// The async protocol engine (DsmConfig::async_engine).
//
// A fault/recall/writeback transaction becomes a resumable state machine
// instead of a thread parked inside the protocol: submitters enqueue a
// prepared request plus a resume closure, and ONE pump thread per
// submitting node drives the queue — it coalesces adjacent sends to the
// same destination into doorbell batches (Fabric::post_batch, one posting
// gap per batch), runs each leg's resume when its reply arrives, and
// completes the original submitter through a FutexTable wake on a
// process-local completion word. N faulting threads therefore no longer
// bound the in-flight protocol work at N: a single pump keeps
// max_inflight transactions outstanding while the other faulters sleep,
// and background work (lease renewal, patrol eviction writeback, prefetch
// issue) rides the same queue instead of detouring synchronously.
//
// The pump's clock is deliberately decoupled from the wire: posting a
// doorbell charges the pump one posting gap and one resume cost per leg
// (CPU work), while each leg's round trip runs on its own scratch clock.
// Successive doorbells therefore overlap in virtual time — that is the
// point of the engine — bounded by a per-node pipeline ring: leg seq may
// not start before leg seq-max_inflight finished, so `max_inflight` is
// both the doorbell window and the NIC queue depth. Completions land on
// the transaction's own timeline (its leg finish plus resume work), never
// the pump loop's.
//
// start() spawns one dedicated pump thread per node — the engine proper:
// it sleeps on the queue's condition variable and drives the node's
// backlog whenever work exists, so background streams (chained prefetch,
// patrol writebacks, lease renewals) make progress while every
// application thread is busy computing. Pump election stays cooperative
// underneath (and is the only mode when start() was not called, e.g. unit
// tests): a foreground submitter that finds the role free takes it; when
// the pump's own transaction completes it releases the role and "pokes"
// one queued foreground submitter (completion word set to kPumpPoke under
// a CAS, then a futex wake), which loops around and elects itself. The
// poke-value protocol closes the lost-wakeup window: wait_local re-checks
// the word under the futex-table lock, so a poke that fires before the
// target parks is observed as a value change, never lost.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/futex.h"
#include "net/fabric.h"

namespace dex::core {

/// Engine counters, mirrored into DsmStats at snapshot time.
struct EngineStats {
  std::atomic<std::uint64_t> submitted{0};
  /// Resume-closure invocations (one per completed leg).
  std::atomic<std::uint64_t> resumes{0};
  /// Transactions completed through the engine (futex-wake completions for
  /// foreground submitters, silent retirement for background work).
  std::atomic<std::uint64_t> completions{0};
  /// Outstanding-transaction depth, sampled at every submit: peak, and
  /// sum/samples for the mean.
  std::atomic<std::uint64_t> depth_peak{0};
  std::atomic<std::uint64_t> depth_sum{0};
  std::atomic<std::uint64_t> depth_samples{0};
  /// Pump-role hand-offs to a parked submitter.
  std::atomic<std::uint64_t> pump_handoffs{0};
};

class ProtocolEngine {
 public:
  using Status = net::CallOutcome::Status;

  /// What a transaction's resume closure tells the engine after examining
  /// one reply: either the transaction is done (with a terminal status the
  /// submitter unwinds on), or it must be resent — possibly retargeted,
  /// possibly not before a backoff deadline.
  struct Step {
    bool done = true;
    Status status = Status::kOk;
    net::Message next;  // the resend, when !done
    /// Frame-admission needs of the resend: pages per pool (see
    /// set_admission). Recomputed on retargets.
    std::vector<std::pair<NodeId, int>> needs;
    /// Earliest virtual time the resend may be posted (retry backoff).
    VirtNs not_before = 0;
  };
  /// Runs in the pump thread right after the transaction's leg completes.
  using ResumeFn = std::function<Step(net::CallOutcome&&)>;

  /// Frame-pool admission hooks (Dsm::admit_frames and
  /// FramePool::drop_credit). Admission credits are per (thread, pool), so
  /// the PUMP — whose thread runs the handlers that allocate — admits the
  /// summed needs of each doorbell batch before posting it and settles the
  /// leftover after the batch resumes. Unset hooks mean no admission
  /// (budget off).
  using AdmitFn = std::function<void(NodeId, int)>;
  using SettleFn = std::function<void(NodeId)>;

  struct Submit {
    NodeId node = 0;  // submitting node: fabric src and queue key
    net::Message request;
    std::vector<std::pair<NodeId, int>> needs;
    ResumeFn resume;
    /// Earliest virtual time the first post may go out. A resume closure
    /// that chains a follow-on background transaction (streaming prefetch)
    /// sets this to its own clock so the child cannot be posted before the
    /// parent's reply virtually arrived.
    VirtNs not_before = 0;
  };

  ProtocolEngine(net::Fabric& fabric, int num_nodes, int max_inflight);
  ~ProtocolEngine() { stop(); }

  /// Spawns one dedicated pump thread per node. Call after bind_futex and
  /// set_admission; without it the engine still works, driven entirely by
  /// cooperative submitter pumping (background work then only progresses
  /// while some foreground transaction is in flight, or via drain()).
  void start();
  /// Stops and joins the pump threads. Queued background transactions are
  /// left for drain()/cooperative pumping; call only when quiesced.
  void stop();

  /// The futex table completions park on / wake through. Set once at
  /// wiring time, before any submit. Must be a table PRIVATE to the
  /// engine, not the process's app futex table: app futex waits hold that
  /// table's lock across a DSM word read which can fault, and the fault
  /// would park right back on the held lock.
  void bind_futex(FutexTable& futex) { futex_ = &futex; }
  void set_admission(AdmitFn admit, SettleFn settle) {
    admit_ = std::move(admit);
    settle_ = std::move(settle);
  }

  /// Blocking foreground transaction: enqueue, then pump the node's queue
  /// or park on the completion word until this transaction completes.
  /// Returns the terminal status; never throws protocol errors itself (the
  /// caller translates kNodeDead / kFailed back into its exception
  /// discipline).
  Status run(Submit submit);

  /// Fire-and-forget background transaction. Driven by whichever pump is
  /// (or next becomes) active on the node, or by an explicit drain().
  void submit_background(Submit submit);

  /// Pumps `node`'s queue in the calling thread until it is empty — the
  /// patrol/membership path for background work when no faulter is
  /// pumping. No-op when a pump is already active (it owns the queue).
  void drain(NodeId node);

  std::size_t pending(NodeId node) const;
  std::uint64_t outstanding() const {
    return outstanding_.load(std::memory_order_relaxed);
  }
  EngineStats& stats() { return stats_; }
  int max_inflight() const { return max_inflight_; }

 private:
  /// Completion-word states. Anything else is unused.
  static constexpr std::uint64_t kPending = 0;
  static constexpr std::uint64_t kDone = 1;
  static constexpr std::uint64_t kPumpPoke = 2;

  struct Txn {
    NodeId node = 0;
    net::Message request;
    std::vector<std::pair<NodeId, int>> needs;
    ResumeFn resume;
    VirtNs not_before = 0;
    bool background = false;
    GAddr wait_key = 0;
    /// kPending / kDone / kPumpPoke; the submitter parks on this word.
    std::atomic<std::uint64_t> done{kPending};
    /// Valid once `done` is kDone (release/acquire on `done`).
    Status final_status = Status::kOk;
    /// The transaction's own virtual finish (last leg end + resume work),
    /// valid with final_status. run() observes it so a submitter that was
    /// itself the pump — whose clock only tracked CPU work — lands on its
    /// transaction's timeline, not the pump loop's.
    VirtNs final_wake_ts = 0;
  };
  using TxnPtr = std::shared_ptr<Txn>;

  TxnPtr make_txn(Submit&& submit, bool background);
  bool try_become_pump(NodeId node);
  void release_pump(NodeId node);
  /// Body of a dedicated per-node pump thread (start()).
  void pump_thread_main(NodeId node);
  /// Drives `node`'s queue. Returns when `own` completes (foreground pump)
  /// or the queue empties (drain, own == nullptr).
  void pump(NodeId node, Txn* own);
  /// `wake_ts` is the virtual time the submitter observes on wake-up —
  /// the transaction's own leg finish, not the doorbell batch's max.
  void complete(Txn& txn, Status status, VirtNs wake_ts);
  /// Pokes one queued foreground submitter to take over the pump role.
  void handoff(NodeId node);

  net::Fabric& fabric_;
  FutexTable* futex_ = nullptr;
  const int max_inflight_;
  AdmitFn admit_;
  SettleFn settle_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  // work arrival / role release / stop
  bool stop_ = false;           // guarded by mu_
  std::vector<std::thread> pump_threads_;
  std::vector<std::deque<TxnPtr>> queues_;  // by submitting node
  std::vector<char> pump_active_;           // by node, guarded by mu_
  /// Per-node NIC pipeline model: ring of the last max_inflight leg-end
  /// times. Leg seq may not virtually start before leg seq-max_inflight
  /// finished, so the depth knob bounds in-flight wire work even though
  /// the pump's own clock only tracks CPU costs. Touched only by the
  /// node's active pump (the role hand-off through mu_ orders access).
  std::vector<std::vector<VirtNs>> pipe_;
  std::vector<std::uint64_t> pipe_seq_;
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<std::uint64_t> next_key_{1};
  EngineStats stats_;
};

}  // namespace dex::core
