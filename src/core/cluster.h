// The simulated rack: N nodes with per-node core counts, the InfiniBand
// fabric connecting them, the per-node load accounting for the bandwidth
// model, and the registry that routes fabric messages to processes.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "common/types.h"
#include "mem/dsm.h"
#include "net/fabric.h"
#include "net/failure_detector.h"

namespace dex::core {

class Process;
struct ProcessOptions;

/// Accrual failure-detector configuration (DESIGN.md "Self-healing").
/// Disabled by default: zero heartbeat or membership traffic, reproducing
/// the oracle-only failure model bit-for-bit.
struct DetectorConfig {
  bool enabled = false;
  /// Virtual-time spacing of heartbeat rounds (one per
  /// Cluster::run_membership_round call).
  VirtNs heartbeat_interval_ns = 50'000;
  /// phi >= phi_suspect marks a node kSuspect (reversible).
  double phi_suspect = 1.0;
  /// phi >= phi_dead declares the node dead cluster-wide (~7 silent
  /// intervals at the default; see net/failure_detector.h).
  double phi_dead = 3.0;
  /// Coordinator succession (off = the seed's pinned node-0 coordinator).
  /// On: the lowest-id survivor coordinates, the coordinator heartbeats its
  /// standby (the next-lowest survivor) so its own silence is scored, and a
  /// dead coordinator is succeeded by the standby under the same
  /// epoch-stamped monotonic-adoption rule — no split-brain.
  bool succession = false;
};

/// Membership state of one node as seen by the coordinator.
enum class MemberState : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,  // phi crossed phi_suspect; clears if heartbeats resume
  kDead = 2,     // declared dead; fenced and reclaimed, epoch bumped
};

struct ClusterConfig {
  /// The paper evaluates 1..8 nodes.
  int num_nodes = 2;
  /// Physical cores per node (8 in the paper; hyper-threads unused).
  int cores_per_node = 8;
  net::CostModel cost;
  net::FabricMode mode;
  net::ConnectionConfig connection;
  /// RPC timeout/retry schedule and chaos policy (see net/fault_injector.h).
  net::RetryPolicy retry;
  net::FaultPolicy faults;
  /// Heartbeat-based failure detection and membership (off by default).
  DetectorConfig detector;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_nodes() const { return config_.num_nodes; }
  int cores_per_node() const { return config_.cores_per_node; }
  int total_cores() const { return num_nodes() * cores_per_node(); }
  const net::CostModel& cost() const { return fabric_->cost(); }
  net::Fabric& fabric() { return *fabric_; }
  mem::NodeLoad& node_load() { return node_load_; }

  /// Creates a distributed process on this cluster.
  std::unique_ptr<Process> create_process(const ProcessOptions& options);

  /// Declares `node` dead: in-flight and future RPCs touching it raise
  /// NodeDeadError, and every registered process reclaims the pages and
  /// threads it loses (graceful degradation; see DESIGN.md "Failure
  /// model"). Failing a process's origin node promotes its deputy when
  /// DsmConfig::origin_failover is on; otherwise the process reports the
  /// unsupported death (mem::OriginDeadError) and degrades.
  void fail_node(NodeId node);
  /// Re-admits a previously failed node after sweeping any state that
  /// raced the failure; the node rejoins empty and refaults everything.
  void heal_node(NodeId node);
  bool node_dead(NodeId node) const {
    return fabric_->injector().node_dead(node);
  }

  // ---- Membership / failure detection (DetectorConfig::enabled) ----
  /// Pumps one heartbeat round on the virtual clock: every node not yet
  /// declared dead posts a heartbeat datagram to the coordinator (node 0),
  /// the pump advances one heartbeat interval, the accrual detector scores
  /// the resulting silence, and any node crossing phi_dead is declared dead
  /// cluster-wide via an epoch-stamped membership broadcast before being
  /// fenced and reclaimed exactly as fail_node() would. Each registered
  /// process's lease patrol also runs. Returns the number of nodes newly
  /// declared dead this round; returns 0 immediately when the detector is
  /// disabled. Single-pumper: call from one driver thread only.
  int run_membership_round();
  MemberState member_state(NodeId node) const;
  /// Monotonic membership epoch; bumps on every declaration and rejoin.
  std::uint64_t membership_epoch() const;
  /// The (epoch, dead-bitmask) view `node` last adopted from a broadcast.
  /// Nodes only adopt strictly newer epochs, so views never regress and
  /// all agree once broadcasts land (no split-brain).
  std::uint64_t view_epoch(NodeId node) const;
  std::uint64_t view_dead_mask(NodeId node) const;
  net::AccrualDetector* detector() { return detector_.get(); }

  /// The current membership coordinator: node 0 with succession off (the
  /// seed's pinned coordinator), otherwise the lowest-id node not yet
  /// declared dead.
  NodeId coordinator() const;

  /// The node currently running the fewest DeX threads — the target the
  /// §III-A "scheduler-initiated migration" extension balances toward.
  NodeId least_loaded_node() const {
    NodeId best = 0;
    int best_load = node_load_.on(0);
    for (NodeId n = 1; n < config_.num_nodes; ++n) {
      const int load = node_load_.on(n);
      if (load < best_load) {
        best = n;
        best_load = load;
      }
    }
    return best;
  }

 private:
  friend class Process;
  void register_process(Process* process);
  void unregister_process(std::uint64_t id);
  Process* find_process(std::uint64_t id) const;
  void install_handlers();
  net::Message handle_heartbeat(const net::Message& msg);
  net::Message handle_membership_update(const net::Message& msg);
  /// Broadcasts the current (epoch, dead-mask) from `src` (the announcing
  /// coordinator) to every node not in the mask. Must NOT be called holding
  /// membership_mu_ (the update handler takes it).
  void broadcast_membership(std::uint64_t epoch, std::uint64_t dead_mask,
                            NodeId src);
  /// The coordinator implied by `dead_mask`: 0 unless succession is on.
  NodeId coordinator_of(std::uint64_t dead_mask) const;
  /// The lowest-id survivor strictly above `after`, or kInvalidNode.
  NodeId next_survivor(std::uint64_t dead_mask, NodeId after) const;

  ClusterConfig config_;
  std::unique_ptr<net::Fabric> fabric_;
  mem::NodeLoad node_load_;

  mutable std::shared_mutex processes_mu_;
  std::unordered_map<std::uint64_t, Process*> processes_;
  std::uint64_t next_process_id_ = 1;

  // ---- Membership (guarded by membership_mu_ unless noted) ----
  std::unique_ptr<net::AccrualDetector> detector_;
  mutable std::mutex membership_mu_;
  std::array<MemberState, mem::kMaxNodes> member_state_{};
  std::uint64_t membership_epoch_ = 0;
  std::uint64_t dead_mask_ = 0;
  std::array<std::uint64_t, mem::kMaxNodes> view_epoch_{};
  std::array<std::uint64_t, mem::kMaxNodes> view_dead_mask_{};
  /// Only the single pump thread touches the sequence counters.
  std::array<std::uint64_t, mem::kMaxNodes> heartbeat_seq_{};
};

}  // namespace dex::core
