// The simulated rack: N nodes with per-node core counts, the InfiniBand
// fabric connecting them, the per-node load accounting for the bandwidth
// model, and the registry that routes fabric messages to processes.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "common/types.h"
#include "mem/dsm.h"
#include "net/fabric.h"

namespace dex::core {

class Process;
struct ProcessOptions;

struct ClusterConfig {
  /// The paper evaluates 1..8 nodes.
  int num_nodes = 2;
  /// Physical cores per node (8 in the paper; hyper-threads unused).
  int cores_per_node = 8;
  net::CostModel cost;
  net::FabricMode mode;
  net::ConnectionConfig connection;
  /// RPC timeout/retry schedule and chaos policy (see net/fault_injector.h).
  net::RetryPolicy retry;
  net::FaultPolicy faults;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_nodes() const { return config_.num_nodes; }
  int cores_per_node() const { return config_.cores_per_node; }
  int total_cores() const { return num_nodes() * cores_per_node(); }
  const net::CostModel& cost() const { return fabric_->cost(); }
  net::Fabric& fabric() { return *fabric_; }
  mem::NodeLoad& node_load() { return node_load_; }

  /// Creates a distributed process on this cluster.
  std::unique_ptr<Process> create_process(const ProcessOptions& options);

  /// Declares `node` dead: in-flight and future RPCs touching it raise
  /// NodeDeadError, and every registered process reclaims the pages and
  /// threads it loses (graceful degradation; see DESIGN.md "Failure
  /// model"). Failing a process's origin node is unsupported.
  void fail_node(NodeId node);
  /// Re-admits a previously failed node after sweeping any state that
  /// raced the failure; the node rejoins empty and refaults everything.
  void heal_node(NodeId node);
  bool node_dead(NodeId node) const {
    return fabric_->injector().node_dead(node);
  }

  /// The node currently running the fewest DeX threads — the target the
  /// §III-A "scheduler-initiated migration" extension balances toward.
  NodeId least_loaded_node() const {
    NodeId best = 0;
    int best_load = node_load_.on(0);
    for (NodeId n = 1; n < config_.num_nodes; ++n) {
      const int load = node_load_.on(n);
      if (load < best_load) {
        best = n;
        best_load = load;
      }
    }
    return best;
  }

 private:
  friend class Process;
  void register_process(Process* process);
  void unregister_process(std::uint64_t id);
  Process* find_process(std::uint64_t id) const;
  void install_handlers();

  ClusterConfig config_;
  std::unique_ptr<net::Fabric> fabric_;
  mem::NodeLoad node_load_;

  mutable std::shared_mutex processes_mu_;
  std::unordered_map<std::uint64_t, Process*> processes_;
  std::uint64_t next_process_id_ = 1;
};

}  // namespace dex::core
