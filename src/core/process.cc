#include "core/process.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/assert.h"
#include "common/time_gate.h"
#include "core/cluster.h"
#include "core/engine.h"
#include "core/placement.h"
#include "net/rpc_error.h"

namespace dex::core {

using net::Message;
using net::MsgType;

// ---------------------------------------------------------------------------
// DexThread
// ---------------------------------------------------------------------------

DexThread::~DexThread() {
  DEX_CHECK_MSG(!joinable(), "DexThread destroyed without join()");
}

void DexThread::join() {
  DEX_CHECK(joinable());
  {
    ScopedGateBlock gate_block("thread_join");
    thread_->join();
  }
  // pthread_join happens-before edge: the joiner's clock absorbs the
  // joinee's final time.
  vclock::observe(clock_->now());
}

// ---------------------------------------------------------------------------
// Process lifecycle
// ---------------------------------------------------------------------------

Process::Process(Cluster& cluster, std::uint64_t id,
                 const ProcessOptions& options)
    : cluster_(cluster), id_(id), options_(options) {
  mem::DsmConfig dsm_config;
  dsm_config.process_id = id;
  dsm_config.origin = options.origin;
  dsm_config.num_nodes = cluster.num_nodes();
  dsm_config.stream_intensity = options.stream_intensity;
  dsm_config.coalesce_faults = options.coalesce_faults;
  dsm_config.max_retries = options.max_retries;
  dsm_config.prefetch_max_pages = options.prefetch_max_pages;
  dsm_config.forward_grants = options.forward_grants;
  dsm_config.dir_shards = options.dir_shards;
  dsm_config.home_migration = options.home_migration;
  dsm_config.home_migrate_run = options.home_migrate_run;
  dsm_config.lease_ns = options.lease_ns;
  dsm_config.frame_budget_bytes = options.frame_budget_bytes;
  dsm_config.spill_cold_pages = options.spill_cold_pages;
  dsm_config.evict_batch_pages = options.evict_batch_pages;
  dsm_config.max_backpressure_rounds = options.max_backpressure_rounds;
  dsm_config.optimistic_latching = options.optimistic_latching;
  dsm_config.async_engine = options.async_engine;
  dsm_config.max_inflight_transactions = options.max_inflight_transactions;
  dsm_config.auto_thread_migration = options.auto_thread_migration;
  dsm_config.thread_migrate_run = options.thread_migrate_run;
  dsm_config.origin_failover = options.origin_failover;
  dsm_ = std::make_unique<mem::Dsm>(cluster.fabric(), dsm_config,
                                    &cluster.node_load(), &trace_);
  if (options.auto_thread_migration) {
    PlacementConfig placement_config;
    placement_config.migrate_run = options.thread_migrate_run;
    placement_ = std::make_unique<PlacementAdvisor>(placement_config);
    dsm_->set_placement(placement_.get());
  }
  if (options.async_engine) {
    engine_ = std::make_unique<ProtocolEngine>(
        cluster.fabric(), cluster.num_nodes(),
        options.max_inflight_transactions);
    engine_->bind_futex(engine_futex_);
    dsm_->set_engine(engine_.get());
    // Dedicated per-node pump threads: background streams (chained
    // prefetch, patrol writebacks, renewals) progress while every DeX
    // thread is busy computing, not just while some faulter is parked.
    engine_->start();
  }
  worker_exists_[static_cast<std::size_t>(options.origin)] = true;
  restart_budget_.store(options.restart_lost_threads ? 256 : 0,
                        std::memory_order_relaxed);
  if (options.frame_budget_bytes > 0 && options.frame_patrol_ms > 0) {
    patrol_thread_ = std::thread([this, period = options.frame_patrol_ms] {
      while (!patrol_stop_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(period));
        if (patrol_stop_.load(std::memory_order_acquire)) break;
        dsm_->frame_patrol();
      }
    });
  }
}

Process::~Process() {
  // Stop the patrol before anything else: it walks the page tables and
  // issues eviction RPCs, so it must be gone before the process leaves
  // the cluster's routing table.
  if (patrol_thread_.joinable()) {
    patrol_stop_.store(true, std::memory_order_release);
    patrol_thread_.join();
  }
  // Detach the engine before it (and then the Dsm) is destroyed; all DeX
  // threads are joined by now, so no transaction can be in flight. The
  // pump threads stop first — their resume closures reach into the Dsm.
  if (engine_ != nullptr) {
    engine_->stop();
    dsm_->set_engine(nullptr);
  }
  // Same for the advisor: its per-task state outlives no DeX thread, but
  // the Dsm must not feed a destroyed advisor.
  if (placement_ != nullptr) dsm_->set_placement(nullptr);
  cluster_.unregister_process(id_);
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

DexThread Process::spawn(std::function<void()> body) {
  ThreadContext& parent = tls_context();
  const NodeId start_node =
      parent.process == this ? parent.node : origin();

  vclock::advance(cluster_.cost().thread_spawn_ns);

  DexThread handle;
  handle.task_ = next_task_.fetch_add(1, std::memory_order_relaxed) + 1;
  handle.clock_ = std::make_shared<VirtualClock>(vclock::now());
  handle.failed_ = std::make_shared<std::atomic<bool>>(false);

  ThreadContext child_ctx;
  child_ctx.process = this;
  child_ctx.node = start_node;
  child_ctx.task = handle.task_;
  child_ctx.clock = handle.clock_.get();

  auto clock = handle.clock_;
  auto failed = handle.failed_;
  // Register the child with the time gate before it can run: without this
  // an early-scheduled child could burst far ahead of siblings that have
  // not been created yet.
  TimeGate::instance().add(clock.get());
  cluster_.node_load().active[static_cast<std::size_t>(start_node)]
      .fetch_add(1, std::memory_order_relaxed);

  handle.thread_ = std::make_unique<std::thread>(
      [this, child_ctx, failed, body = std::move(body)]() mutable {
        ScopedContext bind(child_ctx);
        // Each thread restarts at most once: a second loss means the
        // failure is not transient node death and retrying would loop.
        bool restarted = false;
        for (;;) {
          try {
            body();
          } catch (const net::RpcError& error) {
            // The thread hit an unrecoverable fabric failure (typically its
            // node died under it). NodeDeadError is an RpcError; both land
            // here. If restarts are enabled, re-home the thread and re-run
            // its entry closure from the top — the stack died with the
            // failure, but the closure did not. A migrated thread restarts
            // at its last placement when that node is still alive (the
            // failure was elsewhere in the fabric); only a thread whose own
            // node died falls back to the origin.
            if (options_.restart_lost_threads && !restarted &&
                restart_budget_.fetch_sub(1, std::memory_order_acq_rel) > 0) {
              restarted = true;
              const NodeId lost_on = tls_context().node;
              const NodeId restart_at = cluster_.node_dead(lost_on)
                                            ? origin()
                                            : lost_on;
              if (restart_at != lost_on) {
                cluster_.node_load()
                    .active[static_cast<std::size_t>(lost_on)]
                    .fetch_sub(1, std::memory_order_relaxed);
                cluster_.node_load()
                    .active[static_cast<std::size_t>(restart_at)]
                    .fetch_add(1, std::memory_order_relaxed);
                tls_context().node = restart_at;
              }
              dsm_->failure_stats().threads_restarted.fetch_add(
                  1, std::memory_order_relaxed);
              prof::ChaosCounters::instance().threads_restarted.fetch_add(
                  1, std::memory_order_relaxed);
              if (trace_.enabled()) {
                prof::FaultEvent event;
                event.time = vclock::now();
                event.node = restart_at;
                event.task = child_ctx.task;
                event.kind = prof::FaultKind::kNodeDead;
                trace_.record(event);
              }
              std::fprintf(stderr,
                           "dex: thread %d restarting at node %d: %s\n",
                           child_ctx.task, restart_at, error.what());
              continue;
            }
            // Report it as failed and unwind cleanly instead of
            // deadlocking the process on a thread that can never finish.
            failed->store(true, std::memory_order_release);
            dsm_->failure_stats().threads_lost.fetch_add(
                1, std::memory_order_relaxed);
            prof::ChaosCounters::instance().threads_lost.fetch_add(
                1, std::memory_order_relaxed);
            if (trace_.enabled()) {
              prof::FaultEvent event;
              event.time = vclock::now();
              event.node = tls_context().node;
              event.task = child_ctx.task;
              event.kind = prof::FaultKind::kNodeDead;
              trace_.record(event);
            }
            std::fprintf(stderr, "dex: thread %d lost: %s\n", child_ctx.task,
                         error.what());
          }
          break;
        }
        // The clock stops advancing now: remove it from the time gate so
        // it cannot wedge still-running threads.
        TimeGate::instance().leave(child_ctx.clock);
        // Decrement the load of whatever node the thread ended up on.
        cluster_.node_load()
            .active[static_cast<std::size_t>(tls_context().node)]
            .fetch_sub(1, std::memory_order_relaxed);
      });
  (void)clock;
  return handle;
}

void Process::on_node_failure(NodeId node) {
  dsm_->failure_stats().node_failures.fetch_add(1, std::memory_order_relaxed);
  {
    // The remote worker died with its node: the next migration there (after
    // a heal) must re-create it from scratch.
    std::lock_guard<std::mutex> lock(mig_mu_);
    worker_exists_[static_cast<std::size_t>(node)] = false;
  }
  try {
    dsm_->reclaim_node(node);
  } catch (const mem::OriginDeadError& error) {
    // Origin death without a failover path: degrade gracefully instead of
    // the old process-killing assert. Threads touching the fabric unwind
    // with NodeDeadError and are restarted or reported lost; chaos soaks
    // see the condition in their stats rather than a crash.
    std::fprintf(stderr, "dex: process %llu: %s\n",
                 static_cast<unsigned long long>(id_), error.what());
  }
  {
    // A promoted deputy now plays the origin: delegated VMA/futex work is
    // routed to it, so it needs a resident worker.
    std::lock_guard<std::mutex> lock(mig_mu_);
    worker_exists_[static_cast<std::size_t>(dsm_->current_origin())] = true;
  }
  // Robust-futex sweep: waiters whose waker may have died with the node
  // unblock with kOwnerDied instead of sleeping forever (a barrier with a
  // dead participant must not hang the survivors).
  futex_.sweep_owner_died(vclock::now());
  // Engine-parked faulters live on their own table (see engine_futex_);
  // sweep it too so no waiter anywhere sleeps through a node death.
  engine_futex_.sweep_owner_died(vclock::now());
}

// ---------------------------------------------------------------------------
// Migration (§III-A)
// ---------------------------------------------------------------------------

void Process::migrate(NodeId destination) {
  ThreadContext& ctx = tls_context();
  DEX_CHECK_MSG(ctx.process == this, "migrate() outside a DeX thread");
  DEX_CHECK(destination >= 0 && destination < cluster_.num_nodes());
  if (destination == ctx.node) return;

  const net::CostModel& cost = cluster_.cost();
  const VirtNs start_ts = vclock::now();
  const NodeId from = ctx.node;

  bool first_for_thread;
  {
    std::lock_guard<std::mutex> lock(mig_mu_);
    first_for_thread = thread_migrations_[ctx.task]++ == 0;
  }

  // Collect the execution context (pt_regs / mm references) at the source.
  const VirtNs collect_ns = first_for_thread ? cost.migrate_collect_first_ns
                                             : cost.migrate_collect_next_ns;
  vclock::advance(collect_ns);

  net::MigratePayload payload{};
  payload.process_id = id_;
  payload.task = ctx.task;
  payload.first_for_thread = first_for_thread ? 1 : 0;

  Message msg;
  msg.type = MsgType::kMigrateThread;
  msg.dst = destination;
  msg.set_payload(payload);

  const VirtNs before_wire = vclock::now();
  const Message reply = cluster_.fabric().call(from, msg);
  const auto ack = reply.payload_as<net::MigrateAckPayload>();
  const VirtNs rpc_ns = vclock::now() - before_wire;

  // Rebind the thread to its new node.
  cluster_.node_load().active[static_cast<std::size_t>(from)].fetch_sub(
      1, std::memory_order_relaxed);
  cluster_.node_load()
      .active[static_cast<std::size_t>(destination)]
      .fetch_add(1, std::memory_order_relaxed);
  ctx.node = destination;

  // With placement on, seed the destination's home-hint cache from the
  // directory for this thread's recent working set — a migrated thread's
  // old hints live in the node it left, and cold slots would send its
  // first faults on kWrongHome chases.
  if (placement_ != nullptr && ctx.task > 0) {
    const int warmed =
        dsm_->warm_hints(destination, placement_->recent_pages(ctx.task));
    if (warmed > 0) {
      placement_->stats().hints_warmed.fetch_add(
          static_cast<std::uint64_t>(warmed), std::memory_order_relaxed);
    }
  }

  MigrationRecord record;
  record.task = ctx.task;
  record.from = from;
  record.to = destination;
  record.backward = false;
  record.first_for_thread = first_for_thread;
  record.first_on_node = ack.remote_worker_ns > 0;
  record.origin_side_ns = collect_ns;
  record.remote_worker_ns = ack.remote_worker_ns;
  record.thread_setup_ns = ack.thread_setup_ns;
  record.transfer_ns = rpc_ns - ack.remote_worker_ns - ack.thread_setup_ns;
  record.total_ns = vclock::now() - start_ts;
  record_migration(record);
}

NodeId Process::migrate_to_least_loaded() {
  // Exclude the caller from its own node's count so a thread alone on a
  // node does not keep hopping.
  ThreadContext& ctx = tls_context();
  DEX_CHECK_MSG(ctx.process == this, "outside a DeX thread");
  NodeId best = ctx.node;
  int best_load = cluster_.node_load().on(ctx.node) - 1;
  for (NodeId n = 0; n < cluster_.num_nodes(); ++n) {
    if (n == ctx.node) continue;
    // Never place work on a node the membership layer has fenced off.
    if (cluster_.node_dead(n)) continue;
    const int load = cluster_.node_load().on(n);
    if (load < best_load) {
      best = n;
      best_load = load;
    }
  }
  migrate(best);
  return best;
}

NodeId Process::probe_data_location(GAddr addr) {
  mem::DirEntry* entry = dsm_->directory().find(page_base(addr));
  if (entry == nullptr) return origin();
  std::lock_guard<HybridLatch> lock(entry->latch);
  if (entry->exclusive_owner != kInvalidNode) return entry->exclusive_owner;
  // Shared pages live with whichever node homes the entry (the origin
  // unless adaptive home migration moved it).
  const NodeId home = entry->home.load(std::memory_order_relaxed);
  return home == kInvalidNode ? origin() : home;
}

NodeId Process::migrate_to_data(GAddr addr) {
  const NodeId target = probe_data_location(addr);
  migrate(target);
  return target;
}

void Process::auto_migrate_checkpoint() {
  ThreadContext& ctx = tls_context();
  if (ctx.process != this || ctx.task <= 0) return;
  const NodeId target = placement_->take_pending();
  if (target == kInvalidNode || target == ctx.node) return;
  if (cluster_.node_dead(target)) {
    placement_->on_vetoed(ctx.task);
    return;
  }
  // Engine deferral: relocating a thread while its node still has queued
  // or parked transactions would interleave the move with in-flight
  // protocol work; wait for the queue to drain and re-arm.
  if (engine_ != nullptr && engine_->pending(ctx.node) > 0) {
    placement_->on_deferred(ctx.task);
    return;
  }
  // Load veto: fault mass on one node must not stampede every thread onto
  // it — a destination already running a full complement of cores keeps
  // its threads, and this one stays put.
  if (cluster_.node_load().on(target) >= cluster_.cores_per_node()) {
    placement_->on_vetoed(ctx.task);
    return;
  }
  migrate(target);
  placement_->on_migrated(ctx.task);
  if (trace_.enabled()) {
    prof::FaultEvent event;
    event.time = vclock::now();
    event.node = target;
    event.task = ctx.task;
    event.kind = prof::FaultKind::kThreadMigrate;
    trace_.record(event);
  }
}

Message Process::handle_migrate(const Message& msg) {
  const auto payload = msg.payload_as<net::MigratePayload>();
  DEX_CHECK(payload.process_id == id_);
  const NodeId node = msg.dst;
  const net::CostModel& cost = cluster_.cost();

  bool first_on_node;
  {
    std::lock_guard<std::mutex> lock(mig_mu_);
    first_on_node = !worker_exists_[static_cast<std::size_t>(node)];
    worker_exists_[static_cast<std::size_t>(node)] = true;
  }

  // First migration of this process to this node: create the remote worker
  // and the address-space skeleton, then fork the remote thread from it
  // with CLONE_THREAD (§III-A). Later migrations just fork from the worker.
  net::MigrateAckPayload ack{};
  if (first_on_node) {
    ack.remote_worker_ns = cost.remote_worker_setup_ns;
    ack.thread_setup_ns = cost.remote_thread_setup_first_ns;
  } else {
    ack.thread_setup_ns = cost.remote_thread_setup_next_ns;
  }
  vclock::advance(ack.remote_worker_ns + ack.thread_setup_ns);

  Message reply;
  reply.type = MsgType::kMigrateThread;
  reply.set_payload(ack);
  return reply;
}

void Process::migrate_back() {
  ThreadContext& ctx = tls_context();
  DEX_CHECK_MSG(ctx.process == this, "migrate_back() outside a DeX thread");
  if (ctx.node == origin()) return;

  const net::CostModel& cost = cluster_.cost();
  const VirtNs start_ts = vclock::now();
  const NodeId from = ctx.node;

  // Collect the up-to-date context at the remote; the remote thread exits
  // once the origin thread resumes.
  vclock::advance(cost.backmigrate_remote_ns);

  net::MigratePayload payload{};
  payload.process_id = id_;
  payload.task = ctx.task;

  Message msg;
  msg.type = MsgType::kMigrateBack;
  msg.dst = origin();
  msg.set_payload(payload);
  (void)cluster_.fabric().call(from, msg);

  cluster_.node_load().active[static_cast<std::size_t>(from)].fetch_sub(
      1, std::memory_order_relaxed);
  cluster_.node_load()
      .active[static_cast<std::size_t>(origin())]
      .fetch_add(1, std::memory_order_relaxed);
  ctx.node = origin();

  MigrationRecord record;
  record.task = ctx.task;
  record.from = from;
  record.to = origin();
  record.backward = true;
  record.origin_side_ns = cost.backmigrate_origin_ns;
  record.transfer_ns =
      vclock::now() - start_ts - cost.backmigrate_remote_ns -
      cost.backmigrate_origin_ns;
  record.total_ns = vclock::now() - start_ts;
  record_migration(record);
}

Message Process::handle_migrate_back(const Message& msg) {
  const auto payload = msg.payload_as<net::MigratePayload>();
  DEX_CHECK(payload.process_id == id_);
  // Update the sleeping original thread's context and wake it.
  vclock::advance(cluster_.cost().backmigrate_origin_ns);
  Message reply;
  reply.type = MsgType::kMigrateBack;
  return reply;
}

void Process::record_migration(const MigrationRecord& record) {
  std::lock_guard<std::mutex> lock(mig_mu_);
  migration_log_.push_back(record);
}

std::vector<MigrationRecord> Process::migration_log() const {
  std::lock_guard<std::mutex> lock(mig_mu_);
  return migration_log_;
}

void Process::clear_migration_log() {
  std::lock_guard<std::mutex> lock(mig_mu_);
  migration_log_.clear();
}

bool Process::remote_worker_exists(NodeId node) const {
  std::lock_guard<std::mutex> lock(mig_mu_);
  return worker_exists_[static_cast<std::size_t>(node)];
}

// ---------------------------------------------------------------------------
// Memory management (delegated to the origin when called remotely)
// ---------------------------------------------------------------------------

namespace {
/// Returns the caller's (node, task); defaults to the origin for calls from
/// outside any DeX thread (process setup code).
std::pair<NodeId, TaskId> caller_of(const Process* process, NodeId origin) {
  const ThreadContext& ctx = tls_context();
  if (ctx.process == process) return {ctx.node, ctx.task};
  return {origin, 0};
}
}  // namespace

GAddr Process::mmap(std::uint64_t length, std::uint8_t prot, std::string tag,
                    GAddr hint) {
  auto [node, task] = caller_of(this, origin());
  (void)task;
  if (node == origin()) {
    return dsm_->mmap(length, prot, std::move(tag), hint);
  }
  // Work delegation: the paired origin thread performs the stateful VMA
  // operation at the origin (§III-A).
  delegations_.fetch_add(1, std::memory_order_relaxed);
  net::VmaOpPayload payload{};
  payload.process_id = id_;
  payload.op = 0;
  payload.prot = prot;
  payload.addr = hint;
  payload.length = length;
  std::strncpy(payload.tag, tag.c_str(), sizeof(payload.tag) - 1);
  Message msg;
  msg.type = MsgType::kDelegateVmaOp;
  msg.dst = origin();
  msg.set_payload(payload);
  const Message reply = cluster_.fabric().call(node, msg);
  return reply.payload_as<net::VmaOpReplyPayload>().result;
}

bool Process::munmap(GAddr start, std::uint64_t length) {
  auto [node, task] = caller_of(this, origin());
  (void)task;
  if (node == origin()) return dsm_->munmap(start, length);
  delegations_.fetch_add(1, std::memory_order_relaxed);
  net::VmaOpPayload payload{};
  payload.process_id = id_;
  payload.op = 1;
  payload.addr = start;
  payload.length = length;
  Message msg;
  msg.type = MsgType::kDelegateVmaOp;
  msg.dst = origin();
  msg.set_payload(payload);
  const Message reply = cluster_.fabric().call(node, msg);
  return reply.payload_as<net::VmaOpReplyPayload>().ok != 0;
}

bool Process::mprotect(GAddr start, std::uint64_t length, std::uint8_t prot) {
  auto [node, task] = caller_of(this, origin());
  (void)task;
  if (node == origin()) return dsm_->mprotect(start, length, prot);
  delegations_.fetch_add(1, std::memory_order_relaxed);
  net::VmaOpPayload payload{};
  payload.process_id = id_;
  payload.op = 2;
  payload.addr = start;
  payload.length = length;
  payload.prot = prot;
  Message msg;
  msg.type = MsgType::kDelegateVmaOp;
  msg.dst = origin();
  msg.set_payload(payload);
  const Message reply = cluster_.fabric().call(node, msg);
  return reply.payload_as<net::VmaOpReplyPayload>().ok != 0;
}

Message Process::handle_delegate_vma(const Message& msg) {
  const auto payload = msg.payload_as<net::VmaOpPayload>();
  DEX_CHECK(payload.process_id == id_);
  vclock::advance(cluster_.cost().delegation_service_ns);

  net::VmaOpReplyPayload result{};
  switch (payload.op) {
    case 0:
      result.result = dsm_->mmap(payload.length, payload.prot, payload.tag,
                                 payload.addr);
      result.ok = result.result != kNullGAddr;
      break;
    case 1:
      result.ok = dsm_->munmap(payload.addr, payload.length) ? 1 : 0;
      break;
    case 2:
      result.ok =
          dsm_->mprotect(payload.addr, payload.length, payload.prot) ? 1 : 0;
      break;
    default:
      DEX_CHECK_MSG(false, "bad VMA delegation op");
  }
  Message reply;
  reply.type = MsgType::kDelegateVmaOp;
  reply.set_payload(result);
  return reply;
}

// ---------------------------------------------------------------------------
// Heap allocator
// ---------------------------------------------------------------------------

GAddr Process::g_malloc(std::uint64_t size, const std::string& tag) {
  if (size == 0) return kNullGAddr;
  constexpr std::uint64_t kArenaSize = 1 << 20;
  constexpr std::uint64_t kAlign = 16;
  size = (size + kAlign - 1) & ~(kAlign - 1);

  if (size >= kPageSize) {
    // Large allocations get their own mapping (glibc mmap threshold-ish).
    const GAddr addr = mmap(size, mem::kProtReadWrite, tag);
    if (addr != kNullGAddr) {
      std::lock_guard<std::mutex> lock(alloc_mu_);
      alloc_sizes_[addr] = size;
    }
    return addr;
  }

  std::unique_lock<std::mutex> lock(alloc_mu_);
  if (small_arena_.base == kNullGAddr ||
      small_arena_.used + size > small_arena_.size) {
    lock.unlock();
    // Tightly packed small-object arena: unrelated objects share pages, as
    // with glibc malloc — the false-sharing source §IV-B targets.
    const GAddr arena = mmap(kArenaSize, mem::kProtReadWrite, tag);
    DEX_CHECK_MSG(arena != kNullGAddr, "distributed heap exhausted");
    lock.lock();
    small_arena_ = Arena{arena, kArenaSize, 0};
  }
  const GAddr addr = small_arena_.base + small_arena_.used;
  small_arena_.used += size;
  alloc_sizes_[addr] = size;
  return addr;
}

GAddr Process::g_memalign(std::uint64_t alignment, std::uint64_t size,
                          const std::string& tag) {
  DEX_CHECK_MSG((alignment & (alignment - 1)) == 0,
                "alignment must be a power of two");
  if (size == 0) return kNullGAddr;
  if (alignment <= 16) return g_malloc(size, tag);

  // Page-isolated path (posix_memalign in §IV-B): a dedicated mapping whose
  // start is page aligned, so the object never shares a page.
  const GAddr addr = mmap(std::max(size, std::uint64_t{kPageSize}),
                          mem::kProtReadWrite, tag);
  if (addr != kNullGAddr) {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    alloc_sizes_[addr] = size;
  }
  return addr;
}

void Process::g_free(GAddr addr) {
  if (addr == kNullGAddr) return;
  std::lock_guard<std::mutex> lock(alloc_mu_);
  // Arena blocks are reclaimed with the arena; standalone mappings could be
  // munmapped here, but like many allocators we retain them for reuse.
  alloc_sizes_.erase(addr);
}

// ---------------------------------------------------------------------------
// Futex (§III-A)
// ---------------------------------------------------------------------------

void Process::futex_wait(GAddr addr, std::uint64_t expected) {
  auto [node, task] = caller_of(this, origin());
  if (node == origin()) {
    (void)futex_.wait(*dsm_, origin(), task, addr, expected);
    return;
  }
  delegations_.fetch_add(1, std::memory_order_relaxed);
  net::FutexPayload payload{};
  payload.process_id = id_;
  payload.addr = addr;
  payload.op = 0;
  payload.val = expected;
  payload.task = task;
  Message msg;
  msg.type = MsgType::kDelegateFutex;
  msg.dst = origin();
  msg.set_payload(payload);
  (void)cluster_.fabric().call(node, msg);
}

int Process::futex_wake(GAddr addr, int count) {
  auto [node, task] = caller_of(this, origin());
  if (node == origin()) {
    return futex_.wake(addr, count, vclock::now());
  }
  delegations_.fetch_add(1, std::memory_order_relaxed);
  net::FutexPayload payload{};
  payload.process_id = id_;
  payload.addr = addr;
  payload.op = 1;
  payload.val = static_cast<std::uint64_t>(count);
  payload.task = task;
  Message msg;
  msg.type = MsgType::kDelegateFutex;
  msg.dst = origin();
  msg.set_payload(payload);
  const Message reply = cluster_.fabric().call(node, msg);
  return reply.payload_as<net::FutexReplyPayload>().result;
}

Message Process::handle_delegate_futex(const Message& msg) {
  const auto payload = msg.payload_as<net::FutexPayload>();
  DEX_CHECK(payload.process_id == id_);
  vclock::advance(cluster_.cost().delegation_service_ns);

  net::FutexReplyPayload result{};
  if (payload.op == 0) {
    (void)futex_.wait(*dsm_, origin(), payload.task, payload.addr,
                      payload.val);
    result.result = 0;
  } else {
    result.result = futex_.wake(payload.addr,
                                static_cast<int>(payload.val), msg.sent_at);
  }
  Message reply;
  reply.type = MsgType::kDelegateFutex;
  reply.set_payload(result);
  return reply;
}

// ---------------------------------------------------------------------------
// Context-aware data access
// ---------------------------------------------------------------------------

// Every wrapper ends at a placement safe point: the access has fully
// completed on the node it started on (the Dsm captured `node` by value),
// so an armed automatic migration never splits an operation across nodes.

void Process::read(GAddr addr, void* dst, std::size_t len) {
  auto [node, task] = caller_of(this, origin());
  dsm_->read(node, task, addr, dst, len);
  maybe_auto_migrate();
}

void Process::write(GAddr addr, const void* src, std::size_t len) {
  auto [node, task] = caller_of(this, origin());
  dsm_->write(node, task, addr, src, len);
  maybe_auto_migrate();
}

std::uint64_t Process::atomic_fetch_add(GAddr addr, std::uint64_t delta) {
  auto [node, task] = caller_of(this, origin());
  const std::uint64_t result =
      dsm_->atomic_fetch_add_u64(node, task, addr, delta);
  maybe_auto_migrate();
  return result;
}

std::uint64_t Process::atomic_exchange(GAddr addr, std::uint64_t desired) {
  auto [node, task] = caller_of(this, origin());
  const std::uint64_t result =
      dsm_->atomic_exchange_u64(node, task, addr, desired);
  maybe_auto_migrate();
  return result;
}

bool Process::atomic_cas(GAddr addr, std::uint64_t expected,
                         std::uint64_t desired) {
  auto [node, task] = caller_of(this, origin());
  const bool result =
      dsm_->atomic_cas_u64(node, task, addr, expected, desired);
  maybe_auto_migrate();
  return result;
}

std::uint64_t Process::atomic_load(GAddr addr) {
  auto [node, task] = caller_of(this, origin());
  const std::uint64_t result = dsm_->atomic_load_u64(node, task, addr);
  maybe_auto_migrate();
  return result;
}

void Process::atomic_store(GAddr addr, std::uint64_t value) {
  auto [node, task] = caller_of(this, origin());
  dsm_->atomic_store_u64(node, task, addr, value);
  maybe_auto_migrate();
}

}  // namespace dex::core
