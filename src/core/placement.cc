#include "core/placement.h"

#include <algorithm>

namespace dex::core {
namespace {

/// Thread-local decision channel between note_fault (which runs deep in the
/// fault path) and the Process's data-access boundary. A DeX thread never
/// serves two advisors at once, but twin-run tests create several processes
/// per test, so the slot is tagged with its advisor and cross-advisor reads
/// miss cleanly.
struct PendingSlot {
  const PlacementAdvisor* advisor = nullptr;
  NodeId target = kInvalidNode;
};
thread_local PendingSlot tls_pending;

struct StateSlot {
  const PlacementAdvisor* advisor = nullptr;
  TaskId task = -1;
  void* state = nullptr;
};
thread_local StateSlot tls_state;

/// Page-index hash for the 64-bit distinct-page signature
/// (splitmix64 finalizer — cheap and well mixed).
std::uint64_t mix_page(GAddr page) {
  std::uint64_t x = page_index(page) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

PlacementAdvisor::PlacementAdvisor(const PlacementConfig& config)
    : config_(config) {
  config_.migrate_run = std::max(1, config_.migrate_run);
  config_.window_faults = std::max(1, config_.window_faults);
  config_.min_distinct_pages =
      std::min(config_.min_distinct_pages, config_.window_faults);
}

PlacementAdvisor::~PlacementAdvisor() = default;

PlacementAdvisor::TaskState& PlacementAdvisor::state_for(TaskId task) {
  if (tls_state.advisor == this && tls_state.task == task) {
    return *static_cast<TaskState*>(tls_state.state);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = tasks_[task];
  if (!slot) slot = std::make_unique<TaskState>();
  tls_state = StateSlot{this, task, slot.get()};
  return *slot;
}

void PlacementAdvisor::note_fault(NodeId node, TaskId task, GAddr page,
                                  NodeId home) {
  if (task <= 0) return;  // host-side callers carry no placement
  if (home < 0 || home >= static_cast<NodeId>(mem::kMaxNodes)) return;
  TaskState& state = state_for(task);
  state.window_count[static_cast<std::size_t>(home)]++;
  state.page_sig[static_cast<std::size_t>(home)] |=
      1ull << (mix_page(page) & 63);
  state.recent[static_cast<std::size_t>(state.recent_pos)] = page_base(page);
  state.recent_pos = (state.recent_pos + 1) % kRecentPages;
  state.recent_fill = std::min(state.recent_fill + 1, kRecentPages);
  if (++state.window_fill < config_.window_faults) return;
  finish_window(node, state);
}

void PlacementAdvisor::finish_window(NodeId node, TaskState& state) {
  stats_.windows.fetch_add(1, std::memory_order_relaxed);

  // Fold the window into the EWMA mass and find the dominant node.
  double total = 0.0;
  double best_mass = 0.0;
  NodeId dominant = kInvalidNode;
  for (std::size_t n = 0; n < mem::kMaxNodes; ++n) {
    const double window = static_cast<double>(state.window_count[n]);
    double& mass = state.ewma[n];
    if (window == 0.0 && mass == 0.0) continue;
    mass = config_.ewma_alpha * window + (1.0 - config_.ewma_alpha) * mass;
    total += mass;
    if (mass > best_mass) {
      best_mass = mass;
      dominant = static_cast<NodeId>(n);
    }
  }
  const int distinct =
      dominant == kInvalidNode
          ? 0
          : __builtin_popcountll(
                state.page_sig[static_cast<std::size_t>(dominant)]);
  state.window_count.fill(0);
  state.page_sig.fill(0);
  state.window_fill = 0;

  if (state.cooldown > 0) {
    --state.cooldown;
    state.run = 0;
    state.last_dominant = kInvalidNode;
    return;
  }
  if (dominant == kInvalidNode || dominant == node ||
      best_mass < config_.dominance * total) {
    // Local mass (or no clear winner) anchors the thread where it is.
    state.run = 0;
    state.last_dominant = kInvalidNode;
    return;
  }
  if (distinct < config_.min_distinct_pages) {
    // Single-hot-page dominance: home migration moves that page to this
    // thread instead — moving the thread too would have them chase each
    // other. Cede the window.
    stats_.arbitration_skips.fetch_add(1, std::memory_order_relaxed);
    state.run = 0;
    state.last_dominant = kInvalidNode;
    return;
  }
  if (dominant == state.last_dominant) {
    ++state.run;
  } else {
    state.last_dominant = dominant;
    state.run = 1;
  }
  if (state.run < config_.migrate_run) return;
  if (state.migrations >= config_.migration_budget) return;
  // Arm the move; the thread applies the load veto and the engine check at
  // its next data-access boundary. The run is left saturated so a vetoed
  // or deferred arming re-fires after the next dominant window.
  tls_pending = PendingSlot{this, dominant};
}

NodeId PlacementAdvisor::take_pending() {
  if (tls_pending.advisor != this) return kInvalidNode;
  const NodeId target = tls_pending.target;
  tls_pending = PendingSlot{};
  return target;
}

void PlacementAdvisor::on_migrated(TaskId task) {
  TaskState& state = state_for(task);
  state.cooldown = config_.cooldown_windows;
  state.run = 0;
  state.last_dominant = kInvalidNode;
  state.migrations++;
  state.ewma.fill(0.0);
  state.window_count.fill(0);
  state.page_sig.fill(0);
  state.window_fill = 0;
  stats_.migrations.fetch_add(1, std::memory_order_relaxed);
}

void PlacementAdvisor::on_vetoed(TaskId task) {
  TaskState& state = state_for(task);
  // One quiet window before re-arming, so a full target is not hammered
  // on every subsequent window while the imbalance persists.
  state.cooldown = std::max(state.cooldown, 1);
  state.run = 0;
  stats_.vetoes.fetch_add(1, std::memory_order_relaxed);
}

void PlacementAdvisor::on_deferred(TaskId task) {
  TaskState& state = state_for(task);
  // Keep the run saturated: the next completed window re-arms immediately
  // once the engine queue drains.
  state.run = config_.migrate_run;
  stats_.deferrals.fetch_add(1, std::memory_order_relaxed);
}

std::vector<GAddr> PlacementAdvisor::recent_pages(TaskId task) {
  std::vector<GAddr> pages;
  if (task <= 0) return pages;
  TaskState& state = state_for(task);
  pages.reserve(static_cast<std::size_t>(state.recent_fill));
  for (int i = 0; i < state.recent_fill; ++i) {
    const int idx =
        (state.recent_pos - state.recent_fill + i + 2 * kRecentPages) %
        kRecentPages;
    const GAddr page = state.recent[static_cast<std::size_t>(idx)];
    if (std::find(pages.begin(), pages.end(), page) == pages.end()) {
      pages.push_back(page);
    }
  }
  return pages;
}

}  // namespace dex::core
