// Fork/join parallel regions.
//
// This is the shape the paper converts applications into: "each worker
// thread relocates itself to an assigned node at the beginning of the
// multi-threaded parallel execution region and returns to the origin at the
// end of the region" (§V-A). run_team spawns the workers, inserts the
// forward/backward migration calls, and reports the region's virtual-time
// span — the quantity Figure 2 plots.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "common/virtual_clock.h"
#include "core/process.h"

namespace dex::core {

struct TeamOptions {
  /// Nodes participating in the region (nodes 0..nodes-1; node 0 is
  /// usually the origin).
  int nodes = 1;
  /// Worker threads per node (8 in the paper, to sidestep hyper-threading).
  int threads_per_node = 8;
  /// Insert migrate()/migrate_back() around the body (the DeX conversion).
  /// false = run all workers at the origin (the single-machine baseline).
  bool migrate = true;

  int total_threads() const { return nodes * threads_per_node; }
  NodeId node_of(int tid) const {
    return static_cast<NodeId>(tid / threads_per_node);
  }
};

/// Runs `body(tid, nthreads)` on options.total_threads() workers and joins
/// them. Returns the region's elapsed virtual time (max worker finish time
/// minus region start).
VirtNs run_team(Process& process, const TeamOptions& options,
                const std::function<void(int tid, int nthreads)>& body);

/// Static-schedule parallel for over [begin, end): worker tid gets one
/// contiguous chunk, like OpenMP's `schedule(static)`. Returns elapsed
/// virtual time.
VirtNs parallel_for(
    Process& process, const TeamOptions& options, std::uint64_t begin,
    std::uint64_t end,
    const std::function<void(std::uint64_t lo, std::uint64_t hi, int tid)>&
        body);

/// A persistent worker pool, the shape of an OpenMP runtime: workers are
/// spawned once and then execute parallel regions repeatedly. With
/// options.migrate set, every region is bracketed by migrate(node) /
/// migrate_back() on each worker — the paper's conversion of the NPB
/// OpenMP applications, which relies on cheap repeated migrations
/// (Table II's "2nd migration" path).
class Team {
 public:
  Team(Process& process, const TeamOptions& options);
  ~Team();
  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// Runs one parallel region on all workers; returns its virtual span.
  VirtNs run_region(const std::function<void(int tid, int nthreads)>& body);

  /// Static-schedule loop region over [begin, end).
  VirtNs for_region(
      std::uint64_t begin, std::uint64_t end,
      const std::function<void(std::uint64_t lo, std::uint64_t hi, int tid)>&
          body);

  const TeamOptions& options() const { return options_; }
  int size() const { return options_.total_threads(); }

 private:
  void worker_loop(int tid);

  Process& process_;
  TeamOptions options_;
  std::vector<DexThread> workers_;

  // Host-side orchestration (stands in for the OpenMP runtime's internal
  // dock barrier; virtual-clock joins are explicit).
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  int done_count_ = 0;
  bool shutdown_ = false;
  const std::function<void(int, int)>* body_ = nullptr;
  VirtNs region_start_ts_ = 0;
  VirtualClock region_end_ts_;
};

}  // namespace dex::core
