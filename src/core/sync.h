// Distributed synchronization primitives.
//
// The paper's claim (§III-A): because futex operations are delegated to the
// origin, applications "can use thread synchronization primitives based on
// the futex as is, regardless of their locations". These classes are the
// pthread-style primitives built *only* from distributed-memory atomics and
// futex calls — the same construction glibc uses — so they work identically
// for local and migrated threads. The small host-side VirtualClock members
// are simulation bookkeeping (happens-before clock joins), not semantics.
#pragma once

#include <climits>
#include <cstdint>

#include "common/types.h"
#include "common/virtual_clock.h"
#include "core/process.h"

namespace dex::core {

/// Futex-based mutex (the classic three-state design: 0 free, 1 locked,
/// 2 locked-with-waiters). The lock word lives in distributed memory, so
/// contended locks produce real page ping-pong between nodes — exactly the
/// behaviour the paper's §IV optimizations manage.
class DexMutex {
 public:
  explicit DexMutex(Process& process, const std::string& tag = "mutex");
  DexMutex(const DexMutex&) = delete;
  DexMutex& operator=(const DexMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();

  GAddr word() const { return word_; }

 private:
  Process* process_;
  GAddr word_;
  VirtualClock release_ts_;
};

/// RAII guard.
class DexLockGuard {
 public:
  explicit DexLockGuard(DexMutex& mutex) : mutex_(mutex) { mutex_.lock(); }
  ~DexLockGuard() { mutex_.unlock(); }
  DexLockGuard(const DexLockGuard&) = delete;
  DexLockGuard& operator=(const DexLockGuard&) = delete;

 private:
  DexMutex& mutex_;
};

/// Reusable sense-counting barrier over futex (pthread_barrier-alike).
/// wait() returns true for exactly one "serial" participant per round.
class DexBarrier {
 public:
  DexBarrier(Process& process, int participants,
             const std::string& tag = "barrier");
  DexBarrier(const DexBarrier&) = delete;
  DexBarrier& operator=(const DexBarrier&) = delete;

  bool wait();
  int participants() const { return participants_; }

 private:
  Process* process_;
  int participants_;
  GAddr count_addr_;
  GAddr seq_addr_;
  VirtualClock release_ts_;
};

/// Condition variable over futex; must be used with a DexMutex.
class DexCondVar {
 public:
  explicit DexCondVar(Process& process, const std::string& tag = "condvar");
  DexCondVar(const DexCondVar&) = delete;
  DexCondVar& operator=(const DexCondVar&) = delete;

  void wait(DexMutex& mutex);
  void notify_one();
  void notify_all();

 private:
  Process* process_;
  GAddr seq_addr_;
  VirtualClock release_ts_;
};

}  // namespace dex::core
