#include "core/context.h"

namespace dex::core {

ThreadContext& tls_context() {
  thread_local ThreadContext ctx;
  return ctx;
}

}  // namespace dex::core
