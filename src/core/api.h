// The DeX public API.
//
// This is the surface an application developer sees. Converting a
// single-machine program is the paper's two-line recipe:
//
//     dex::migrate(node);        // at the start of the parallel region
//     ...existing code...
//     dex::migrate_back();       // at its end
//
// plus ordinary allocation and data access through the distributed address
// space (GArray/GVar below stand in for the raw loads and stores a real MMU
// would let the unmodified code perform).
#pragma once

#include <string>

#include "common/types.h"
#include "common/virtual_clock.h"
#include "core/cluster.h"
#include "core/context.h"
#include "core/parallel.h"
#include "core/process.h"
#include "core/sync.h"
#include "mem/dsm.h"
#include "prof/analysis.h"
#include "prof/trace.h"

namespace dex {

using core::Cluster;
using core::ClusterConfig;
using core::DexBarrier;
using core::DexCondVar;
using core::DexLockGuard;
using core::DexMutex;
using core::DexThread;
using core::MemberState;
using core::MigrationRecord;
using core::parallel_for;
using core::Process;
using core::ProcessOptions;
using core::run_team;
using core::TeamOptions;
using mem::kProtRead;
using mem::kProtReadWrite;
using mem::kProtWrite;
using mem::SegfaultError;
using prof::ScopedSite;

/// The calling DeX thread's current node (the origin for non-DeX threads).
inline NodeId current_node() { return core::tls_context().node; }
inline TaskId current_task() { return core::tls_context().task; }
inline Process* current_process() { return core::tls_context().process; }

/// Migrates the calling thread to `node` (§III-A). A no-op if already
/// there. Must be called from a DeX thread.
inline void migrate(NodeId node) {
  core::tls_context().process->migrate(node);
}

/// Returns the calling thread to its origin node.
inline void migrate_back() { core::tls_context().process->migrate_back(); }

/// Charges `ns` of modeled CPU work to the calling thread's virtual clock.
/// Applications express their compute cost through this (the simulator's
/// stand-in for actually burning cycles on the paper's Xeons).
inline void compute(VirtNs ns) { vclock::advance(ns); }

/// Current virtual time of the calling thread.
inline VirtNs now() { return vclock::now(); }

/// A typed array in the distributed address space. Every element access
/// goes through the software MMU (page-permission check, fault handling,
/// coherence), so arrays behave like ordinary memory on the paper's system.
template <typename T>
class GArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  GArray() = default;
  GArray(Process& process, std::size_t count, const std::string& tag)
      : process_(&process), count_(count) {
    base_ = process.mmap(count * sizeof(T), kProtReadWrite, tag);
    DEX_CHECK_MSG(base_ != kNullGAddr, "GArray mmap failed");
  }
  /// Adopts an existing mapping (e.g. a g_malloc'd region).
  GArray(Process& process, GAddr base, std::size_t count)
      : process_(&process), base_(base), count_(count) {}

  std::size_t size() const { return count_; }
  GAddr addr(std::size_t i = 0) const { return base_ + i * sizeof(T); }

  T get(std::size_t i) const { return process_->load<T>(addr(i)); }
  void set(std::size_t i, const T& value) {
    process_->store<T>(addr(i), value);
  }

  /// Bulk accessors: one fault per page instead of per element — the same
  /// behaviour real loads/stores have once a page is mapped.
  void read_block(std::size_t i, std::size_t n, T* out) const {
    process_->read(addr(i), out, n * sizeof(T));
  }
  void write_block(std::size_t i, std::size_t n, const T* in) {
    process_->write(addr(i), in, n * sizeof(T));
  }

  void fill(const T& value) {
    for (std::size_t i = 0; i < count_; ++i) set(i, value);
  }

 private:
  Process* process_ = nullptr;
  GAddr base_ = kNullGAddr;
  std::size_t count_ = 0;
};

/// A single typed variable in distributed memory. `isolated` gives it a
/// private page (the §IV-B padding/alignment fix); otherwise it is packed
/// into the shared heap arena like an ordinary global.
template <typename T>
class GVar {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  GVar() = default;
  GVar(Process& process, const std::string& tag, bool isolated = false)
      : process_(&process) {
    addr_ = isolated ? process.g_memalign(kPageSize, sizeof(T), tag)
                     : process.g_malloc(sizeof(T), tag);
    DEX_CHECK(addr_ != kNullGAddr);
  }

  GAddr addr() const { return addr_; }
  T load() const { return process_->load<T>(addr_); }
  void store(const T& value) { process_->store<T>(addr_, value); }

 private:
  Process* process_ = nullptr;
  GAddr addr_ = kNullGAddr;
};

/// 64-bit shared counter/flag with atomic RMW (global variables like GRP's
/// match counter or KMN's convergence flag).
class GCounter {
 public:
  GCounter() = default;
  GCounter(Process& process, const std::string& tag, bool isolated = false)
      : process_(&process) {
    addr_ = isolated ? process.g_memalign(kPageSize, 8, tag)
                     : process.g_malloc(8, tag);
    DEX_CHECK(addr_ != kNullGAddr);
    process.atomic_store(addr_, 0);
  }

  GAddr addr() const { return addr_; }
  std::uint64_t load() const { return process_->atomic_load(addr_); }
  void store(std::uint64_t v) { process_->atomic_store(addr_, v); }
  std::uint64_t fetch_add(std::uint64_t delta) {
    return process_->atomic_fetch_add(addr_, delta);
  }

 private:
  Process* process_ = nullptr;
  GAddr addr_ = kNullGAddr;
};

}  // namespace dex
