// The origin-side futex implementation (§III-A work delegation).
//
// Linux thread-synchronization primitives bottom out in futex(2); DeX
// forwards futex calls from remote threads to the origin, where the
// existing (here: this) implementation runs unmodified. The table keys wait
// queues by futex word address; `wait` re-checks the word *while holding
// the table lock* to close the lost-wakeup window, exactly as the kernel
// does with the hash-bucket lock.
//
// Wakers deposit their virtual timestamp in the queue; woken waiters
// observe it, giving synchronization the happens-before clock join.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>

#include "common/types.h"

namespace dex::mem {
class Dsm;
}

namespace dex::core {

class FutexTable {
 public:
  /// Result of a wait call.
  enum class WaitResult {
    kWoken,         // a waker released us
    kValueChanged,  // *addr != expected at enqueue time (EAGAIN)
    kOwnerDied,     // woken by the robust sweep after a node death
  };

  /// Blocks until woken, provided the 64-bit word at `addr` still equals
  /// `expected` when the queue is locked. Reads the word through the DSM at
  /// the origin node (futexes execute at the origin).
  WaitResult wait(mem::Dsm& dsm, NodeId origin, TaskId task, GAddr addr,
                  std::uint64_t expected);

  /// Keys above this bit are process-local completion words, never DSM
  /// addresses: the async engine parks transaction submitters on them
  /// (see wait_local). Real futex words live in the mmap'd address space,
  /// far below this bit, so the two key spaces cannot collide.
  static constexpr GAddr kLocalKeyBase = GAddr{1} << 63;

  /// wait() for a process-local completion word: same queueing, same
  /// lost-wakeup protection, same robust sweep coverage — but the word is
  /// re-checked as a plain local atomic instead of through the DSM (a DSM
  /// read here could recursively fault, and engine completion words are
  /// not distributed memory). `key` must carry kLocalKeyBase.
  WaitResult wait_local(GAddr key, const std::atomic<std::uint64_t>& word,
                        std::uint64_t expected);

  /// Wakes up to `count` waiters on `addr`; returns the number woken.
  /// `waker_ts` is the waker's virtual time, observed by each woken waiter.
  int wake(GAddr addr, int count, VirtNs waker_ts);

  /// Robust-futex sweep after a node death: wakes EVERY currently-enqueued
  /// waiter with WaitResult::kOwnerDied. The kernel's robust list tracks
  /// which futexes a dead task held; DeX does not, so the sweep is
  /// conservative — any waiter may have been waiting on a holder that died
  /// with the node, and each woken waiter re-examines the futex word (a
  /// barrier with a dead participant unblocks instead of hanging forever).
  /// Returns the number of waiters woken.
  int sweep_owner_died(VirtNs waker_ts);

  std::uint64_t total_waits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_waits_;
  }
  std::uint64_t total_wakes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_wakes_;
  }

 private:
  /// One enqueued waiter. Wake targets *specific currently-enqueued*
  /// waiters (as the kernel futex does); a token/counter scheme would let
  /// a later waiter on the same address steal an earlier waiter's wake.
  struct Waiter {
    bool woken = false;
    VirtNs wake_ts = 0;
    WaitResult result = WaitResult::kWoken;
  };
  struct Queue {
    std::condition_variable cv;
    std::list<Waiter*> waiters;
    /// Threads physically blocked in cv.wait; the queue may only be erased
    /// when none remain (the cv must outlive its sleepers).
    int sleepers = 0;
  };

  mutable std::mutex mu_;
  std::map<GAddr, Queue> queues_;
  std::uint64_t total_waits_ = 0;
  std::uint64_t total_wakes_ = 0;
};

}  // namespace dex::core
