#include "core/engine.h"

#include <algorithm>

#include "common/assert.h"
#include "common/time_gate.h"

#include "common/virtual_clock.h"

namespace dex::core {

ProtocolEngine::ProtocolEngine(net::Fabric& fabric, int num_nodes,
                               int max_inflight)
    : fabric_(fabric),
      max_inflight_(std::max(1, max_inflight)),
      queues_(static_cast<std::size_t>(num_nodes)),
      pump_active_(static_cast<std::size_t>(num_nodes), 0),
      pipe_(static_cast<std::size_t>(num_nodes),
            std::vector<VirtNs>(static_cast<std::size_t>(
                                    std::max(1, max_inflight)),
                                0)),
      pipe_seq_(static_cast<std::size_t>(num_nodes), 0) {}

ProtocolEngine::TxnPtr ProtocolEngine::make_txn(Submit&& submit,
                                                bool background) {
  DEX_CHECK(submit.node >= 0 &&
            static_cast<std::size_t>(submit.node) < queues_.size());
  DEX_CHECK(static_cast<bool>(submit.resume));
  auto txn = std::make_shared<Txn>();
  txn->node = submit.node;
  txn->request = std::move(submit.request);
  txn->needs = std::move(submit.needs);
  txn->resume = std::move(submit.resume);
  txn->not_before = submit.not_before;
  txn->background = background;
  txn->wait_key = FutexTable::kLocalKeyBase +
                  next_key_.fetch_add(1, std::memory_order_relaxed);

  const std::uint64_t depth =
      outstanding_.fetch_add(1, std::memory_order_relaxed) + 1;
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  stats_.depth_sum.fetch_add(depth, std::memory_order_relaxed);
  stats_.depth_samples.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t peak = stats_.depth_peak.load(std::memory_order_relaxed);
  while (depth > peak &&
         !stats_.depth_peak.compare_exchange_weak(
             peak, depth, std::memory_order_relaxed)) {
  }
  return txn;
}

bool ProtocolEngine::try_become_pump(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pump_active_[static_cast<std::size_t>(node)] != 0) return false;
  pump_active_[static_cast<std::size_t>(node)] = 1;
  return true;
}

void ProtocolEngine::release_pump(NodeId node) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pump_active_[static_cast<std::size_t>(node)] = 0;
  }
  // A foreground pump may leave with background work still queued; the
  // node's dedicated thread (if any) picks it up.
  cv_.notify_all();
}

void ProtocolEngine::start() {
  DEX_CHECK_MSG(futex_ != nullptr, "engine started before bind_futex");
  DEX_CHECK_MSG(pump_threads_.empty(), "engine started twice");
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  pump_threads_.reserve(queues_.size());
  for (std::size_t n = 0; n < queues_.size(); ++n) {
    pump_threads_.emplace_back(
        [this, node = static_cast<NodeId>(n)] { pump_thread_main(node); });
  }
}

void ProtocolEngine::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : pump_threads_) {
    if (t.joinable()) t.join();
  }
  pump_threads_.clear();
}

void ProtocolEngine::pump_thread_main(NodeId node) {
  // The thread's clock is pure pump-CPU bookkeeping: legs and resumes run
  // on their own scratch clocks, and nothing observes this one. pump()
  // excludes it from the TimeGate for each stint; the explicit leave()
  // below removes it again afterwards so an idle engine thread can never
  // become the gate's (stuck) minimum.
  VirtualClock clock(0);
  ScopedClockBinding bind(&clock);
  const auto n = static_cast<std::size_t>(node);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] {
      return stop_ || (!queues_[n].empty() && pump_active_[n] == 0);
    });
    if (stop_) return;
    pump_active_[n] = 1;
    lock.unlock();
    pump(node, /*own=*/nullptr);
    if (vclock::coupling_enabled()) TimeGate::instance().leave(&clock);
    lock.lock();
  }
}

void ProtocolEngine::complete(Txn& txn, Status status, VirtNs wake_ts) {
  txn.final_status = status;
  txn.final_wake_ts = wake_ts;
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  stats_.completions.fetch_add(1, std::memory_order_relaxed);
  txn.done.store(kDone, std::memory_order_release);
  if (!txn.background) {
    // The submitter observes this wake timestamp — its own leg's finish
    // plus the resume work, NOT the doorbell batch's max leg: a demand
    // fault sharing a doorbell with a long prefetch-payload leg completes
    // when ITS reply lands.
    futex_->wake(txn.wait_key, 1, wake_ts);
  }
}

void ProtocolEngine::handoff(NodeId node) {
  // Called after the pump role was released: poke one queued foreground
  // submitter to elect itself. The CAS-to-kPumpPoke plus wait_local's
  // locked re-check make the poke race-free: a target that has not parked
  // yet observes the value change instead of sleeping through the wake.
  TxnPtr candidate;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const TxnPtr& txn : queues_[static_cast<std::size_t>(node)]) {
      if (!txn->background) {
        candidate = txn;
        break;
      }
    }
  }
  if (!candidate) return;
  std::uint64_t expected = kPending;
  if (candidate->done.compare_exchange_strong(expected, kPumpPoke,
                                              std::memory_order_acq_rel)) {
    stats_.pump_handoffs.fetch_add(1, std::memory_order_relaxed);
    futex_->wake(candidate->wait_key, 1, vclock::now());
  }
}

void ProtocolEngine::pump(NodeId node, Txn* own) {
  auto& queue = queues_[static_cast<std::size_t>(node)];
  const net::CostModel& cost = fabric_.cost();
  auto& ring = pipe_[static_cast<std::size_t>(node)];
  std::uint64_t& seq = pipe_seq_[static_cast<std::size_t>(node)];
  // The pump's clock tracks CPU work only (posting gaps, resume costs);
  // the legs' wire time runs on scratch clocks. That makes the pump the
  // slowest member of a coupled run by construction, so it steps out of
  // the TimeGate for the duration — exactly like the doorbell legs
  // themselves, and like any thread whose clock deliberately stands still.
  ScopedGateBlock gate_block("engine_pump");
  for (;;) {
    // Take a window of ready transactions (FIFO, bounded by the depth
    // knob). Deferred transactions (retry backoff) stay queued until the
    // pump's clock reaches their deadline.
    std::vector<TxnPtr> window;
    VirtNs earliest_deferred = 0;
    bool have_deferred = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const VirtNs now = vclock::now();
      // A transaction whose not_before lies within the pipeline's virtual
      // horizon posts NOW, with not_before enforced as that leg's start
      // floor — a queued NIC op whose execution is simply scheduled a bit
      // later. Gating those on the pump's clock instead would shatter the
      // doorbell window: the pump's clock deliberately lags the wire, so
      // every chained prefetch rung (not-before its parent's delivery)
      // would look far-future and trickle out in one-leg waves. Only
      // deadlines past everything in flight (retry backoff) stay queued.
      VirtNs horizon = now;
      for (const VirtNs end : ring) horizon = std::max(horizon, end);
      // Foreground (demand) transactions outrank background work for the
      // window's slots: a chained prefetch stream must never starve a
      // faulting thread out of the doorbell.
      for (int pass = 0; pass < 2; ++pass) {
        const bool want_background = pass == 1;
        for (auto it = queue.begin();
             it != queue.end() &&
             window.size() < static_cast<std::size_t>(max_inflight_);) {
          if ((*it)->background != want_background) {
            ++it;
            continue;
          }
          if ((*it)->not_before <= horizon) {
            window.push_back(std::move(*it));
            it = queue.erase(it);
          } else {
            if (!have_deferred || (*it)->not_before < earliest_deferred) {
              earliest_deferred = (*it)->not_before;
            }
            have_deferred = true;
            ++it;
          }
        }
      }
    }

    if (window.empty()) {
      if (!have_deferred) {
        // Queue fully drained (a foreground pump only reaches this after
        // its own transaction completed — it was in the queue until then).
        release_pump(node);
        handoff(node);
        return;
      }
      if (own != nullptr &&
          own->done.load(std::memory_order_acquire) == kDone) {
        // Own transaction done, only deferred work left: hand the role
        // over rather than waiting out someone else's backoff.
        release_pump(node);
        handoff(node);
        return;
      }
      // Everything is deferred and we must see it through (own pending, or
      // an explicit drain): wait out the earliest backoff on this clock,
      // exactly as the blocking path would.
      const VirtNs now = vclock::now();
      if (earliest_deferred > now) vclock::advance(earliest_deferred - now);
      continue;
    }

    // Coalesce same-destination sends into doorbell batches. The window is
    // FIFO, so concurrent submitters faulting toward different homes
    // interleave destinations; a stable sort regroups them (order within a
    // destination preserved) — legs in one window are independent, and
    // each completes on its own leg finish regardless of posting order.
    std::stable_sort(window.begin(), window.end(),
                     [](const TxnPtr& a, const TxnPtr& b) {
                       return a->request.dst < b->request.dst;
                     });
    std::size_t i = 0;
    while (i < window.size()) {
      const NodeId dst = window[i]->request.dst;
      std::size_t j = i;
      std::vector<net::Message> requests;
      while (j < window.size() && window[j]->request.dst == dst) {
        requests.push_back(window[j]->request);
        ++j;
      }

      // Admit the batch's summed frame needs per pool in THIS thread (the
      // handlers run here and consume this thread's credits), settle the
      // leftover after the batch resumes.
      std::vector<std::pair<NodeId, int>> totals;
      for (std::size_t k = i; k < j; ++k) {
        for (const auto& [pool, pages] : window[k]->needs) {
          auto it = std::find_if(totals.begin(), totals.end(),
                                 [p = pool](const auto& t) {
                                   return t.first == p;
                                 });
          if (it == totals.end()) {
            totals.emplace_back(pool, pages);
          } else {
            it->second += pages;
          }
        }
      }
      bool admitted = true;
      if (admit_) {
        try {
          for (const auto& [pool, pages] : totals) admit_(pool, pages);
        } catch (...) {
          admitted = false;
        }
      }
      if (!admitted) {
        for (std::size_t k = i; k < j; ++k) {
          complete(*window[k], Status::kFailed, vclock::now());
        }
        if (settle_) {
          for (const auto& [pool, pages] : totals) settle_(pool);
        }
        i = j;
        continue;
      }

      // One posting gap for the whole doorbell — the pump's only wire-side
      // CPU charge. The batch itself runs on a scratch clock so the pump
      // does not inherit the batch's max leg: successive doorbells overlap
      // in virtual time, bounded by the pipeline ring (leg seq may not
      // start before leg seq-depth finished).
      vclock::advance(cost.fanout_post_gap_ns);
      std::vector<VirtNs> floors(requests.size());
      for (std::size_t k = 0; k < requests.size(); ++k) {
        floors[k] = std::max(ring[(seq + k) % ring.size()],
                             window[i + k]->not_before);
      }
      std::vector<VirtNs> leg_ends;
      std::vector<net::CallOutcome> outcomes;
      {
        VirtualClock post_clock(vclock::now());
        {
          ScopedClockBinding bind(&post_clock);
          outcomes = fabric_.post_batch(node, requests, &leg_ends, &floors);
        }
        if (vclock::coupling_enabled()) {
          TimeGate::instance().leave(&post_clock);
        }
      }
      for (std::size_t k = 0; k < requests.size(); ++k) {
        ring[(seq + k) % ring.size()] = leg_ends[k];
      }
      seq += requests.size();

      for (std::size_t k = i; k < j; ++k) {
        Txn& txn = *window[k];
        vclock::advance(cost.engine_resume_ns);
        stats_.resumes.fetch_add(1, std::memory_order_relaxed);
        // The resume runs on a scratch clock seeded at THIS leg's finish:
        // its costs (grant observes, chained submits) extend the
        // transaction's own timeline, not the pump's.
        VirtualClock resume_clock(leg_ends[k - i]);
        Step step;
        bool resumed = true;
        {
          ScopedClockBinding bind(&resume_clock);
          try {
            step = txn.resume(std::move(outcomes[k - i]));
          } catch (...) {
            resumed = false;
          }
        }
        if (vclock::coupling_enabled()) {
          TimeGate::instance().leave(&resume_clock);
        }
        const VirtNs wake_ts = resume_clock.now() + cost.engine_resume_ns;
        if (!resumed) {
          complete(txn, Status::kFailed, wake_ts);
        } else if (step.done) {
          complete(txn, step.status, wake_ts);
        } else {
          txn.request = std::move(step.next);
          txn.needs = std::move(step.needs);
          // Causality: attempt N+1 may not be posted before attempt N's
          // leg finished — the pump's own clock can lag the wire.
          txn.not_before = std::max(step.not_before, leg_ends[k - i]);
          std::lock_guard<std::mutex> lock(mu_);
          queue.push_back(window[k]);
        }
      }
      if (settle_) {
        for (const auto& [pool, pages] : totals) settle_(pool);
      }
      i = j;
    }

    if (own != nullptr &&
        own->done.load(std::memory_order_acquire) == kDone) {
      release_pump(node);
      handoff(node);
      return;
    }
  }
}

ProtocolEngine::Status ProtocolEngine::run(Submit submit) {
  DEX_CHECK_MSG(futex_ != nullptr, "engine used before bind_futex");
  vclock::advance(fabric_.cost().engine_submit_ns);
  const NodeId node = submit.node;
  TxnPtr txn = make_txn(std::move(submit), /*background=*/false);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[static_cast<std::size_t>(node)].push_back(txn);
  }
  cv_.notify_all();
  Txn* own = txn.get();
  for (;;) {
    const std::uint64_t d = own->done.load(std::memory_order_acquire);
    if (d == kDone) break;
    if (d == kPumpPoke) {
      own->done.store(kPending, std::memory_order_relaxed);
    }
    if (try_become_pump(node)) {
      pump(node, own);
      continue;
    }
    // Another submitter is pumping: park on the completion word. A
    // kOwnerDied wake (robust sweep after a node death) just loops — the
    // pump role may now be free, and re-posting surfaces the death as a
    // per-leg kNodeDead outcome that completes this transaction properly.
    futex_->wait_local(own->wait_key, own->done, kPending);
  }
  // Land on the transaction's own timeline. The futex wake carries the
  // same timestamp for parked submitters; this covers the submitter that
  // was itself the pump, whose clock only tracked CPU work.
  vclock::observe(own->final_wake_ts);
  return own->final_status;
}

void ProtocolEngine::submit_background(Submit submit) {
  DEX_CHECK_MSG(futex_ != nullptr, "engine used before bind_futex");
  vclock::advance(fabric_.cost().engine_submit_ns);
  const NodeId node = submit.node;
  TxnPtr txn = make_txn(std::move(submit), /*background=*/true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[static_cast<std::size_t>(node)].push_back(txn);
  }
  cv_.notify_all();
}

void ProtocolEngine::drain(NodeId node) {
  if (node < 0 || static_cast<std::size_t>(node) >= queues_.size()) return;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queues_[static_cast<std::size_t>(node)].empty()) return;
    }
    if (!try_become_pump(node)) return;  // an active pump owns the queue
    pump(node, /*own=*/nullptr);
  }
}

std::size_t ProtocolEngine::pending(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (node < 0 || static_cast<std::size_t>(node) >= queues_.size()) return 0;
  return queues_[static_cast<std::size_t>(node)].size();
}

}  // namespace dex::core
