#include "core/futex.h"

#include "common/time_gate.h"
#include "common/virtual_clock.h"
#include "mem/dsm.h"

namespace dex::core {

FutexTable::WaitResult FutexTable::wait(mem::Dsm& dsm, NodeId origin,
                                        TaskId task, GAddr addr,
                                        std::uint64_t expected) {
  // The whole wait is gate-excluded: the thread is about to sleep, and the
  // table lock can be held across protocol traffic by other waiters.
  ScopedGateBlock gate_block("futex_wait");
  std::unique_lock<std::mutex> lock(mu_);
  // Re-check the futex word under the table lock (lost-wakeup protection).
  // The DSM read can trigger protocol traffic — including a full page
  // fault. The fault path never re-enters THIS table: blocking faults park
  // on the FaultTable, and engine faults park on the engine's private
  // FutexTable (Process::engine_futex_), so holding mu_ here is safe.
  const std::uint64_t current = dsm.atomic_load_u64(origin, task, addr);
  if (current != expected) return WaitResult::kValueChanged;

  Queue& queue = queues_[addr];
  Waiter self;
  queue.waiters.push_back(&self);
  ++queue.sleepers;
  ++total_waits_;
  queue.cv.wait(lock, [&self] { return self.woken; });
  --queue.sleepers;
  vclock::observe(self.wake_ts);
  // wake() already unlinked us; drop the queue once fully drained.
  if (queue.waiters.empty() && queue.sleepers == 0) queues_.erase(addr);
  return self.result;
}

FutexTable::WaitResult FutexTable::wait_local(
    GAddr key, const std::atomic<std::uint64_t>& word,
    std::uint64_t expected) {
  ScopedGateBlock gate_block("futex_wait");
  std::unique_lock<std::mutex> lock(mu_);
  // Same lost-wakeup protection as wait(), against a local atomic: a wake
  // that fired before this lock was taken has already flipped the word.
  if (word.load(std::memory_order_acquire) != expected) {
    return WaitResult::kValueChanged;
  }

  Queue& queue = queues_[key];
  Waiter self;
  queue.waiters.push_back(&self);
  ++queue.sleepers;
  ++total_waits_;
  queue.cv.wait(lock, [&self] { return self.woken; });
  --queue.sleepers;
  vclock::observe(self.wake_ts);
  if (queue.waiters.empty() && queue.sleepers == 0) queues_.erase(key);
  return self.result;
}

int FutexTable::wake(GAddr addr, int count, VirtNs waker_ts) {
  ScopedGateBlock gate_block("futex_wake");
  std::lock_guard<std::mutex> lock(mu_);
  ++total_wakes_;
  auto it = queues_.find(addr);
  if (it == queues_.end()) return 0;
  Queue& queue = it->second;
  int woken = 0;
  while (woken < count && !queue.waiters.empty()) {
    Waiter* waiter = queue.waiters.front();
    queue.waiters.pop_front();
    waiter->woken = true;
    waiter->wake_ts = waker_ts;
    ++woken;
  }
  if (woken > 0) queue.cv.notify_all();
  return woken;
}

int FutexTable::sweep_owner_died(VirtNs waker_ts) {
  ScopedGateBlock gate_block("futex_sweep");
  std::lock_guard<std::mutex> lock(mu_);
  int woken = 0;
  for (auto& [addr, queue] : queues_) {
    while (!queue.waiters.empty()) {
      Waiter* waiter = queue.waiters.front();
      queue.waiters.pop_front();
      waiter->woken = true;
      waiter->wake_ts = waker_ts;
      waiter->result = WaitResult::kOwnerDied;
      ++woken;
    }
    if (woken > 0) queue.cv.notify_all();
  }
  return woken;
}

}  // namespace dex::core
