// Joint thread<->page placement (ROADMAP item 2, Phoenix-style).
//
// Home migration (mem/directory.h, DsmConfig::home_migration) moves a *page*
// to its dominant faulter; the PlacementAdvisor closes the loop from the
// other side and moves the *thread* to its data. It consumes the same
// requester-side fault stream the six-tuple trace records — every granted
// leader fault reports (thread, page, serving home) via note_fault() — and
// maintains, per DeX thread, a per-node fault-mass EWMA over fixed-size
// fault-count windows. When one remote node's mass dominates for
// `thread_migrate_run` consecutive windows (the same anti-ping-pong
// hysteresis shape as home_migrate_run), the advisor arms a pending
// migration target; the thread picks it up at its next data-access boundary
// (Process::maybe_auto_migrate) and transparently migrate()s itself there.
//
// Guard rails, in decision order:
//   - arbitration vs home migration: a window whose dominant mass sits on
//     fewer than `min_distinct_pages` distinct pages is a single-hot-page
//     pattern — that page's entry will migrate *here* instead (pages follow
//     a single dominant faulter; threads follow multi-page fault mass), so
//     the run is reset and the skip counted;
//   - hysteresis: `migrate_run` consecutive windows must agree on the same
//     dominant node, a post-migration cooldown of `cooldown_windows` keeps a
//     freshly moved thread from bouncing straight back, and a per-thread
//     `migration_budget` bounds lifetime auto-moves outright;
//   - load veto (applied by the Process, counted here): a target already
//     running a full complement of threads is rejected, so fault mass on one
//     node never stampedes every thread onto it;
//   - engine deferral (applied by the Process): a node with parked async
//     transactions defers the move until the engine queue is empty.
//
// Threading: note_fault() and the pending-target exchange run in the
// faulting thread itself (the fault path's requester side), so all per-task
// decision state has a single writer and is cached behind a thread_local;
// only map creation takes the registry mutex. The advisor exists only when
// DsmConfig::auto_thread_migration is on — off-path cost is one null check.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "mem/directory.h"

namespace dex::core {

struct PlacementConfig {
  /// Consecutive dominant windows before a migration is armed (mirrors
  /// DsmConfig::home_migrate_run; ProcessOptions::thread_migrate_run).
  int migrate_run = 3;
  /// Granted leader faults per decision window.
  int window_faults = 16;
  /// EWMA smoothing: mass = alpha * window + (1 - alpha) * mass.
  double ewma_alpha = 0.5;
  /// Dominance threshold: the top remote node's EWMA mass must be at least
  /// this fraction of the thread's total mass.
  double dominance = 0.625;
  /// Quiet windows after a migration before the run counter may grow again.
  int cooldown_windows = 4;
  /// Lifetime automatic migrations per thread (storm guard).
  int migration_budget = 8;
  /// Distinct faulted pages the dominant node must contribute within the
  /// deciding window — fewer means home migration owns the pattern.
  int min_distinct_pages = 4;
};

/// Placement counters, mirrored into DsmStats at stats() snapshot time
/// (the engine/pool idiom) and surfaced through prof::ProtocolCounters.
struct PlacementStats {
  /// Completed decision windows across all threads.
  std::atomic<std::uint64_t> windows{0};
  /// Automatic Process::migrate calls the advisor triggered.
  std::atomic<std::uint64_t> migrations{0};
  /// Armed targets rejected by the load veto (target at capacity or dead).
  std::atomic<std::uint64_t> vetoes{0};
  /// Armed targets postponed behind a non-empty engine queue.
  std::atomic<std::uint64_t> deferrals{0};
  /// Dominant windows ceded to home migration (single-hot-page pattern).
  std::atomic<std::uint64_t> arbitration_skips{0};
  /// Home hints seeded into the destination's cache on arrival.
  std::atomic<std::uint64_t> hints_warmed{0};
};

class PlacementAdvisor {
 public:
  explicit PlacementAdvisor(const PlacementConfig& config);
  ~PlacementAdvisor();
  PlacementAdvisor(const PlacementAdvisor&) = delete;
  PlacementAdvisor& operator=(const PlacementAdvisor&) = delete;

  const PlacementConfig& config() const { return config_; }

  /// Requester-side fault accounting: `task` running on `node` took a
  /// granted (non-retry) leader fault on `page` served by `home`. Local
  /// faults (home == node) count as local mass — they anchor the thread
  /// where it is. Runs in the faulting thread; host callers (task <= 0,
  /// e.g. test harness reads) are ignored. When the decision fires, the
  /// target is parked in a thread_local for take_pending().
  void note_fault(NodeId node, TaskId task, GAddr page, NodeId home);

  /// The armed migration target for the calling thread, or kInvalidNode.
  /// Consumes the pending state (one migrate attempt per arming).
  NodeId take_pending();

  /// Outcome callbacks from the Process, from the migrating thread itself.
  void on_migrated(TaskId task);
  void on_vetoed(TaskId task);
  void on_deferred(TaskId task);

  /// The calling thread's most recently faulted pages, newest last —
  /// the working set whose home hints are worth warming on arrival.
  std::vector<GAddr> recent_pages(TaskId task);

  PlacementStats& stats() { return stats_; }

  /// Ring capacity of the per-thread recent-page set.
  static constexpr int kRecentPages = 16;

 private:
  struct TaskState {
    // ---- Window accumulators (reset every window_faults faults) ----
    std::array<std::uint32_t, mem::kMaxNodes> window_count{};
    /// Per-home 64-bit distinct-page signature (hashed page bits); its
    /// popcount lower-bounds the distinct pages faulted against that home.
    std::array<std::uint64_t, mem::kMaxNodes> page_sig{};
    int window_fill = 0;
    // ---- Smoothed mass and hysteresis ----
    std::array<double, mem::kMaxNodes> ewma{};
    NodeId last_dominant = kInvalidNode;
    int run = 0;
    int cooldown = 0;
    int migrations = 0;
    // ---- Arrival-warming working set ----
    std::array<GAddr, kRecentPages> recent{};
    int recent_fill = 0;
    int recent_pos = 0;
  };

  /// The calling thread's state, created on first use. Cached in a
  /// thread_local keyed by (advisor, task) so the registry mutex is only
  /// taken once per thread lifetime.
  TaskState& state_for(TaskId task);

  void finish_window(NodeId node, TaskState& state);

  PlacementConfig config_;
  PlacementStats stats_;

  std::mutex mu_;
  std::unordered_map<TaskId, std::unique_ptr<TaskState>> tasks_;
};

}  // namespace dex::core
