// R-MAT graph generator (Chakrabarti et al.) with the Graph500 parameters
// the paper uses for the Polymer BFS/BP workloads: a=0.57, b=c=0.19,
// d=0.05. Produces a deterministic edge list for a given seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rand.h"

namespace dex {

struct RmatParams {
  std::uint32_t scale = 16;          // 2^scale vertices
  std::uint64_t edge_factor = 4;     // edges = edge_factor * vertices
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
  std::uint64_t seed = 0x5eed;
  bool permute_vertices = true;      // Graph500 shuffles vertex labels
};

struct Edge {
  std::uint32_t src;
  std::uint32_t dst;
  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Generates `edge_factor * 2^scale` directed edges. Self-loops and
/// duplicates are kept (as in Graph500 kernel 1 input); CSR construction
// deduplicates where needed.
std::vector<Edge> generate_rmat(const RmatParams& params);

/// Compressed sparse row representation built from an edge list.
struct Csr {
  std::uint32_t num_vertices = 0;
  std::vector<std::uint64_t> offsets;  // size num_vertices + 1
  std::vector<std::uint32_t> targets;  // size num_edges

  std::uint64_t num_edges() const { return targets.size(); }
  std::uint64_t degree(std::uint32_t v) const {
    return offsets[v + 1] - offsets[v];
  }
};

/// Builds a CSR. When `symmetrize` is set every edge is inserted in both
/// directions (Polymer's BFS/BP run on undirected views). Self loops are
/// dropped; parallel edges are kept.
Csr build_csr(std::uint32_t num_vertices, const std::vector<Edge>& edges,
              bool symmetrize);

}  // namespace dex
