// Version-counter hybrid latch for the fault hot path (ROADMAP item 1,
// ScaleStore's HybridLatch idiom). Three modes:
//
//   optimistic — snapshot the version, run the read, re-validate; restart
//                when a writer slipped in. Costs one cache line read, no
//                stores, so concurrent optimists never contend.
//   shared     — classic reader count; blocks exclusive, never bumps the
//                version.
//   exclusive  — single writer; releasing bumps the version, invalidating
//                every optimistic snapshot taken before/while it was held.
//
// The exclusive mode implements Lockable (lock/try_lock/unlock), so a
// HybridLatch drops in wherever a std::mutex guarded the structure before
// (std::lock_guard / std::unique_lock / std::adopt_lock all work) — that
// is what keeps `DsmConfig::optimistic_latching = false` bit-for-bit the
// seed pessimistic protocol.
//
// Blocking acquires escalate spin → yield → sleep because DirEntry latches
// are held across RPCs and paced virtual-time sleeps: a pure spin would
// burn a core for the whole wire round trip.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace dex {

namespace detail {
inline void latch_backoff(int spins) noexcept {
  if (spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  } else if (spins < 512) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}
}  // namespace detail

class HybridLatch {
 public:
  /// Set while an exclusive holder is in; the low 63 bits are the version.
  static constexpr std::uint64_t kExclusiveBit = std::uint64_t{1} << 63;
  static constexpr std::uint64_t kVersionMask = kExclusiveBit - 1;
  /// Sentinel returned by try_optimistic() when the latch is held
  /// exclusively (never a valid snapshot: the exclusive bit is set).
  static constexpr std::uint64_t kLocked = ~std::uint64_t{0};

  HybridLatch() = default;
  /// Starts the version counter at `initial_version` (tests use this to
  /// exercise the wrap at kVersionMask).
  explicit HybridLatch(std::uint64_t initial_version) noexcept
      : word_(initial_version & kVersionMask) {}
  HybridLatch(const HybridLatch&) = delete;
  HybridLatch& operator=(const HybridLatch&) = delete;

  // ---- optimistic mode ----

  /// Non-blocking snapshot: the current version, or kLocked when an
  /// exclusive holder is in. Callers on probe paths fall back to the
  /// pessimistic acquire instead of spinning behind an RPC-length hold.
  std::uint64_t try_optimistic() const noexcept {
    const std::uint64_t v = word_.load(std::memory_order_acquire);
    return (v & kExclusiveBit) != 0 ? kLocked : v;
  }

  /// Blocking snapshot: waits out any exclusive holder first.
  std::uint64_t optimistic_begin() const noexcept {
    for (int spins = 0;; ++spins) {
      const std::uint64_t v = word_.load(std::memory_order_acquire);
      if ((v & kExclusiveBit) == 0) return v;
      detail::latch_backoff(spins);
    }
  }

  /// True iff no exclusive section ran since `snapshot` was taken — every
  /// value read in between is consistent. On false the caller MUST discard
  /// what it read and restart (or upgrade).
  [[nodiscard]] bool validate(std::uint64_t snapshot) const noexcept {
    // Order the protected reads before the re-load of the version word.
    std::atomic_thread_fence(std::memory_order_acquire);
    return word_.load(std::memory_order_relaxed) == snapshot;
  }

  /// validate() for a thread that itself holds the latch exclusively
  /// (GuardX::upgrade): the exclusive bit is ours, so only the version
  /// bits are compared against the optimistic snapshot.
  [[nodiscard]] bool validate_exclusive_held(
      std::uint64_t snapshot) const noexcept {
    return word_.load(std::memory_order_relaxed) ==
           (snapshot | kExclusiveBit);
  }

  std::uint64_t version() const noexcept {
    return word_.load(std::memory_order_acquire) & kVersionMask;
  }

  // ---- exclusive mode (Lockable: std::lock_guard / unique_lock) ----

  void lock() noexcept {
    for (int spins = 0;; ++spins) {
      std::uint64_t v = word_.load(std::memory_order_relaxed);
      if ((v & kExclusiveBit) == 0 &&
          word_.compare_exchange_weak(v, v | kExclusiveBit,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        break;
      }
      detail::latch_backoff(spins);
    }
    // Shared holders admitted before the bit went up drain out here; new
    // ones back off on seeing the bit.
    for (int spins = 0; readers_.load(std::memory_order_acquire) != 0;
         ++spins) {
      detail::latch_backoff(spins);
    }
  }

  bool try_lock() noexcept {
    std::uint64_t v = word_.load(std::memory_order_relaxed);
    if ((v & kExclusiveBit) != 0 ||
        !word_.compare_exchange_strong(v, v | kExclusiveBit,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return false;
    }
    if (readers_.load(std::memory_order_acquire) != 0) {
      // A reader is in: back out without bumping the version (nothing was
      // written) so optimistic snapshots stay valid.
      word_.store(v, std::memory_order_release);
      return false;
    }
    return true;
  }

  /// Releases exclusive mode and bumps the version (wrapping within the
  /// low 63 bits), invalidating all outstanding optimistic snapshots.
  void unlock() noexcept {
    const std::uint64_t v = word_.load(std::memory_order_relaxed);
    word_.store((v + 1) & kVersionMask, std::memory_order_release);
  }

  // ---- shared mode ----

  void lock_shared() noexcept {
    for (int spins = 0;; ++spins) {
      readers_.fetch_add(1, std::memory_order_acquire);
      if ((word_.load(std::memory_order_acquire) & kExclusiveBit) == 0) {
        return;
      }
      // An exclusive holder (or acquirer) is in: step back out and wait,
      // so lock() can finish draining.
      readers_.fetch_sub(1, std::memory_order_release);
      while ((word_.load(std::memory_order_relaxed) & kExclusiveBit) != 0) {
        detail::latch_backoff(spins++);
      }
    }
  }

  bool try_lock_shared() noexcept {
    readers_.fetch_add(1, std::memory_order_acquire);
    if ((word_.load(std::memory_order_acquire) & kExclusiveBit) == 0) {
      return true;
    }
    readers_.fetch_sub(1, std::memory_order_release);
    return false;
  }

  void unlock_shared() noexcept {
    readers_.fetch_sub(1, std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> word_{0};
  std::atomic<std::int32_t> readers_{0};
};

/// Optimistic guard: snapshots the version at construction; validate()
/// says whether everything read since is consistent. No unlock on
/// destruction — the whole point is that optimists hold nothing.
class GuardO {
 public:
  struct NonBlocking {};
  /// Marker for the non-blocking constructor: probe paths use it so they
  /// never spin behind a latch held across an RPC.
  static constexpr NonBlocking kNonBlocking{};

  explicit GuardO(const HybridLatch& latch) noexcept
      : latch_(&latch), snapshot_(latch.optimistic_begin()) {}
  GuardO(const HybridLatch& latch, NonBlocking) noexcept
      : latch_(&latch), snapshot_(latch.try_optimistic()) {}

  /// False when the non-blocking constructor found an exclusive holder;
  /// the guard then never validates.
  bool engaged() const noexcept {
    return snapshot_ != HybridLatch::kLocked;
  }

  [[nodiscard]] bool validate() const noexcept {
    return engaged() && latch_->validate(snapshot_);
  }

  std::uint64_t snapshot() const noexcept { return snapshot_; }
  const HybridLatch* latch() const noexcept { return latch_; }

 private:
  const HybridLatch* latch_;
  std::uint64_t snapshot_;
};

/// Shared guard (movable; default-constructed = unowned).
class GuardS {
 public:
  GuardS() = default;
  explicit GuardS(HybridLatch& latch) noexcept : latch_(&latch) {
    latch_->lock_shared();
  }
  GuardS(GuardS&& other) noexcept : latch_(other.latch_) {
    other.latch_ = nullptr;
  }
  GuardS& operator=(GuardS&& other) noexcept {
    if (this != &other) {
      reset();
      latch_ = other.latch_;
      other.latch_ = nullptr;
    }
    return *this;
  }
  GuardS(const GuardS&) = delete;
  GuardS& operator=(const GuardS&) = delete;
  ~GuardS() { reset(); }

  /// Upgrade path from an optimistic guard: takes shared mode, then fails
  /// (returning an unowned guard) when the snapshot was invalidated in
  /// the window — restart the optimistic section in that case.
  [[nodiscard]] static GuardS upgrade(HybridLatch& latch,
                                      const GuardO& opt) noexcept {
    GuardS guard(latch);
    if (!opt.validate()) guard.reset();
    return guard;
  }

  bool owns() const noexcept { return latch_ != nullptr; }
  void reset() noexcept {
    if (latch_ != nullptr) latch_->unlock_shared();
    latch_ = nullptr;
  }

 private:
  HybridLatch* latch_ = nullptr;
};

/// Exclusive guard (movable; default-constructed = unowned).
class GuardX {
 public:
  GuardX() = default;
  explicit GuardX(HybridLatch& latch) noexcept : latch_(&latch) {
    latch_->lock();
  }
  GuardX(GuardX&& other) noexcept : latch_(other.latch_) {
    other.latch_ = nullptr;
  }
  GuardX& operator=(GuardX&& other) noexcept {
    if (this != &other) {
      reset();
      latch_ = other.latch_;
      other.latch_ = nullptr;
    }
    return *this;
  }
  GuardX(const GuardX&) = delete;
  GuardX& operator=(const GuardX&) = delete;
  ~GuardX() { reset(); }

  /// Upgrade path from an optimistic guard: takes exclusive mode, then
  /// fails (returning an unowned guard) when the snapshot was invalidated
  /// before the acquire landed — the optimist's reads are stale and must
  /// be redone, so the caller restarts instead of mutating.
  [[nodiscard]] static GuardX upgrade(HybridLatch& latch,
                                      const GuardO& opt) noexcept {
    GuardX guard(latch);
    if (!opt.engaged() || !latch.validate_exclusive_held(opt.snapshot())) {
      guard.reset();
    }
    return guard;
  }

  bool owns() const noexcept { return latch_ != nullptr; }
  void reset() noexcept {
    if (latch_ != nullptr) latch_->unlock();
    latch_ = nullptr;
  }

 private:
  HybridLatch* latch_ = nullptr;
};

}  // namespace dex
