// Tiny TTAS spinlock for very short critical sections (PTE updates, pool
// freelists). Mirrors the kernel spinlocks guarding PTE updates in the
// paper's fault path (§III-C).
#pragma once

#include <atomic>

namespace dex {

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() noexcept {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace dex
