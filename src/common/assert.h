// DeX invariant checks. These are protocol invariants (directory state,
// buffer-pool lifecycle, ...) whose violation means a bug in DeX itself, so
// they stay on in release builds, like BUG_ON in the kernel the paper
// modifies.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dex::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "DEX_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? ": " : "", msg);
  std::abort();
}
}  // namespace dex::detail

#define DEX_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) ::dex::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define DEX_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr))                                                         \
      ::dex::detail::check_failed(#expr, __FILE__, __LINE__, (msg));     \
  } while (0)
