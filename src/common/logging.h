// Minimal leveled logger. DeX is a library: logging defaults to warnings
// only, and everything funnels through one sink so tests can capture it.
#pragma once

#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace dex {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void log(LogLevel level, const std::string& msg) {
    if (level < level_) return;
    std::lock_guard<std::mutex> lock(mu_);
    std::fprintf(stderr, "[dex:%s] %s\n", name(level), msg.c_str());
  }

 private:
  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dex

#define DEX_LOG_DEBUG ::dex::detail::LogLine(::dex::LogLevel::kDebug)
#define DEX_LOG_INFO ::dex::detail::LogLine(::dex::LogLevel::kInfo)
#define DEX_LOG_WARN ::dex::detail::LogLine(::dex::LogLevel::kWarn)
#define DEX_LOG_ERROR ::dex::detail::LogLine(::dex::LogLevel::kError)
