// Synthetic "Wikipedia-like" text generator for the GRP (string match)
// workload. The paper scans 8 GB of Wikipedia text for four keys of 7-10
// bytes; we generate deterministic filler text with keys planted at a known
// rate so the expected match counts are exactly computable for verification.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dex {

struct TextGenParams {
  std::size_t bytes = 1 << 20;
  std::vector<std::string> keys = {"popcorn", "infiniband", "migration",
                                   "coherence"};
  /// A key is planted roughly every `plant_interval` bytes, round-robin.
  std::size_t plant_interval = 512;
  std::uint64_t seed = 42;
};

struct GeneratedText {
  std::vector<char> data;
  /// Exact number of occurrences of each key, in params order.
  std::vector<std::uint64_t> key_counts;
};

GeneratedText generate_text(const TextGenParams& params);

/// Reference scalar matcher used to validate the distributed GRP result:
/// counts (possibly overlapping) occurrences of `key` in `data`.
std::uint64_t count_occurrences(const char* data, std::size_t len,
                                const std::string& key);

}  // namespace dex
