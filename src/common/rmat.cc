#include "common/rmat.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"

namespace dex {

std::vector<Edge> generate_rmat(const RmatParams& params) {
  DEX_CHECK(params.scale > 0 && params.scale < 32);
  const std::uint64_t n = std::uint64_t{1} << params.scale;
  const std::uint64_t m = params.edge_factor * n;
  const double ab = params.a + params.b;
  const double abc = ab + params.c;

  Xoshiro256 rng(params.seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint64_t src = 0, dst = 0;
    for (std::uint32_t bit = 0; bit < params.scale; ++bit) {
      const double r = rng.next_double();
      src <<= 1;
      dst <<= 1;
      if (r < params.a) {
        // top-left quadrant: neither bit set
      } else if (r < ab) {
        dst |= 1;
      } else if (r < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    edges.push_back(Edge{static_cast<std::uint32_t>(src),
                         static_cast<std::uint32_t>(dst)});
  }

  if (params.permute_vertices) {
    std::vector<std::uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::uint64_t i = n - 1; i > 0; --i) {
      const std::uint64_t j = rng.next_below(i + 1);
      std::swap(perm[i], perm[j]);
    }
    for (auto& edge : edges) {
      edge.src = perm[edge.src];
      edge.dst = perm[edge.dst];
    }
  }
  return edges;
}

Csr build_csr(std::uint32_t num_vertices, const std::vector<Edge>& edges,
              bool symmetrize) {
  Csr csr;
  csr.num_vertices = num_vertices;
  csr.offsets.assign(num_vertices + 1, 0);

  auto count_edge = [&](std::uint32_t src, std::uint32_t dst) {
    if (src == dst) return;  // drop self loops
    ++csr.offsets[src + 1];
  };
  for (const auto& e : edges) {
    DEX_CHECK(e.src < num_vertices && e.dst < num_vertices);
    count_edge(e.src, e.dst);
    if (symmetrize) count_edge(e.dst, e.src);
  }
  std::partial_sum(csr.offsets.begin(), csr.offsets.end(),
                   csr.offsets.begin());
  csr.targets.resize(csr.offsets.back());

  std::vector<std::uint64_t> cursor(csr.offsets.begin(),
                                    csr.offsets.end() - 1);
  auto place_edge = [&](std::uint32_t src, std::uint32_t dst) {
    if (src == dst) return;
    csr.targets[cursor[src]++] = dst;
  };
  for (const auto& e : edges) {
    place_edge(e.src, e.dst);
    if (symmetrize) place_edge(e.dst, e.src);
  }
  // Sorted adjacency lists give deterministic traversal order.
  for (std::uint32_t v = 0; v < num_vertices; ++v) {
    std::sort(csr.targets.begin() + static_cast<std::ptrdiff_t>(csr.offsets[v]),
              csr.targets.begin() +
                  static_cast<std::ptrdiff_t>(csr.offsets[v + 1]));
  }
  return csr;
}

}  // namespace dex
