// Log-bucketed latency histogram + simple scalar statistics. Used by the
// messaging layer, the fault handler and the benchmarks to report latency
// distributions (the §V-D fault microbenchmark reports a bimodal one).
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dex {

/// Thread-safe histogram over [1ns, ~18e18ns) with 4 sub-buckets per
/// power of two (~19% relative bucket error).
class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 4;
  static constexpr int kBuckets = 64 * kSubBuckets;

  void record(std::uint64_t ns) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counts_[bucket_for(ns)];
    ++count_;
    sum_ += ns;
    min_ = std::min(min_, ns);
    max_ = std::max(max_, ns);
  }

  std::uint64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  double mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  std::uint64_t min() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0 : min_;
  }

  std::uint64_t max() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_;
  }

  /// Approximate quantile (bucket upper bound), q in [0, 1].
  std::uint64_t percentile(double q) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ == 0) return 0;
    const auto target =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= target) return bucket_upper(i);
    }
    return max_;
  }

  /// Returns the bucket upper bounds of local maxima with at least
  /// `min_share` of the samples — used to detect bimodal distributions.
  std::vector<std::uint64_t> modes(double min_share = 0.05) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::uint64_t> result;
    if (count_ == 0) return result;
    const auto threshold = static_cast<std::uint64_t>(
        min_share * static_cast<double>(count_));
    for (int i = 0; i < kBuckets; ++i) {
      if (counts_[i] < std::max<std::uint64_t>(threshold, 1)) continue;
      const std::uint64_t left = i > 0 ? counts_[i - 1] : 0;
      const std::uint64_t right = i + 1 < kBuckets ? counts_[i + 1] : 0;
      if (counts_[i] >= left && counts_[i] >= right) {
        result.push_back(bucket_upper(i));
      }
    }
    return result;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    counts_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
  }

 private:
  static int bucket_for(std::uint64_t ns) {
    if (ns == 0) return 0;
    const int log2 = 63 - __builtin_clzll(ns);
    int sub = 0;
    if (log2 >= 2) {
      sub = static_cast<int>((ns >> (log2 - 2)) & 3);
    }
    const int idx = log2 * kSubBuckets + sub;
    return std::min(idx, kBuckets - 1);
  }

  static std::uint64_t bucket_upper(int idx) {
    const int log2 = idx / kSubBuckets;
    const int sub = idx % kSubBuckets;
    if (log2 < 2) return std::uint64_t{1} << (log2 + 1);
    return (std::uint64_t{4} + sub + 1) << (log2 - 2);
  }

  mutable std::mutex mu_;
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

/// Running mean / stddev over doubles (Welford).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace dex
