#include "common/time_gate.h"

#include <thread>

namespace dex {

TimeGate& TimeGate::instance() {
  static TimeGate gate;
  return gate;
}

void TimeGate::enable(VirtNs window_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  window_ = window_ns;
  members_.clear();
  last_min_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void TimeGate::disable() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    enabled_.store(false, std::memory_order_relaxed);
    members_.clear();
  }
  cv_.notify_all();
}

VirtNs TimeGate::min_runnable_locked() const {
  VirtNs min = ~VirtNs{0};
  for (const auto& [clock, member] : members_) {
    if (member.blocked > 0) continue;
    const VirtNs now = clock->now();
    if (now < min) min = now;
  }
  return min;
}

void TimeGate::throttle(VirtualClock* clock) {
  bool yield_cpu = false;
  std::unique_lock<std::mutex> lock(mu_);
  if (!enabled()) return;
  members_.try_emplace(clock);
  // Wake waiters only when the minimum rose: most advances are by
  // non-minimum threads and cannot unblock anyone. Track decreases too
  // (a thread can unblock with an old, low clock), or the watermark goes
  // stale and rising passes stop notifying — a lost-wakeup deadlock.
  const VirtNs min = min_runnable_locked();
  if (min != last_min_) {
    const bool rose = min > last_min_;
    last_min_ = min;
    if (rose) {
      log_locked('N', clock, min);
      cv_.notify_all();
      // The minimum thread never waits below, so on a host with few cores
      // it would keep the CPU and run arbitrarily far ahead in *real* time
      // while the threads it just woke starve on the run queue. Handing
      // the CPU over keeps real interleaving at batch granularity.
      yield_cpu = waiting_ > 0;
    }
  }
  log_locked('T', clock, min);
  ++waiting_;
  cv_.wait(lock, [&] {
    if (!enabled()) return true;
    // Re-find each evaluation: the map may rehash while we wait.
    auto it = members_.find(clock);
    if (it == members_.end()) return true;
    // Gate-excluded threads (sleeping in the simulation, possibly holding
    // locks others need) never stall here.
    if (it->second.blocked > 0) return true;
    const VirtNs current_min = min_runnable_locked();
    return clock->now() <= current_min + window_;
  });
  --waiting_;
  log_locked('W', clock, min_runnable_locked());
  lock.unlock();
  if (yield_cpu) std::this_thread::yield();
}

void TimeGate::add(VirtualClock* clock) {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    members_.try_emplace(clock);
    last_min_ = min_runnable_locked();
  }
  cv_.notify_all();
}

void TimeGate::block(VirtualClock* clock, const char* site) {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto member = members_.try_emplace(clock).first;
    ++member->second.blocked;
    member->second.block_site = site;
    last_min_ = min_runnable_locked();
    log_locked('B', clock, last_min_);
  }
  // This clock no longer bounds the minimum: others may proceed.
  cv_.notify_all();
}

void TimeGate::unblock(VirtualClock* clock) {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = members_.find(clock);
    if (it == members_.end()) return;
    if (it->second.blocked > 0) --it->second.blocked;
    // The watermark must follow the minimum DOWN here: an unblocked thread
    // can re-enter with an old, low clock, and if last_min_ stays high the
    // subsequent rise back past sleeping waiters looks like "no change"
    // and never notifies them (lost-wakeup deadlock).
    last_min_ = min_runnable_locked();
    log_locked('U', clock, last_min_);
  }
  cv_.notify_all();
}

std::string TimeGate::debug_dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "TimeGate waiting=" + std::to_string(waiting_) +
                    " enabled=" +
                    std::to_string(enabled_.load()) +
                    " window=" + std::to_string(window_) +
                    " last_min=" + std::to_string(last_min_) + "\n";
  for (const auto& [clock, member] : members_) {
    out += "  clock " + std::to_string(reinterpret_cast<std::uintptr_t>(clock) % 100000) +
           " now=" + std::to_string(clock->now()) +
           " blocked=" + std::to_string(member.blocked) +
           (member.blocked > 0 && member.block_site
                ? std::string(" site=") + member.block_site
                : "") + "\n";
  }
  out += "recent events (oldest first):\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[(event_pos_ + i) % events_.size()];
    if (e.kind == 0) continue;
    out += std::string("  ") + e.kind + " clock=" +
           std::to_string(reinterpret_cast<std::uintptr_t>(e.clock) % 100000) +
           " now=" + std::to_string(e.clock_now) +
           " min=" + std::to_string(e.min) + "\n";
  }
  return out;
}

void TimeGate::leave(VirtualClock* clock) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    members_.erase(clock);
    last_min_ = min_runnable_locked();
    log_locked('L', clock, last_min_);
  }
  cv_.notify_all();
}

}  // namespace dex
