#include "common/textgen.h"

#include <cstring>

#include "common/assert.h"
#include "common/rand.h"

namespace dex {

namespace {
constexpr char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ \n\t.,";
constexpr std::size_t kAlphabetSize = sizeof(kAlphabet) - 1;
}  // namespace

GeneratedText generate_text(const TextGenParams& params) {
  DEX_CHECK(!params.keys.empty());
  GeneratedText out;
  out.data.resize(params.bytes);
  Xoshiro256 rng(params.seed);

  // Filler drawn from uppercase letters + whitespace: keys are lowercase, so
  // filler can never accidentally form a key or create an overlap.
  for (auto& c : out.data) {
    c = kAlphabet[rng.next_below(kAlphabetSize)];
  }

  out.key_counts.assign(params.keys.size(), 0);
  std::size_t pos = params.plant_interval / 2;
  std::size_t which = 0;
  while (pos < params.bytes) {
    const std::string& key = params.keys[which % params.keys.size()];
    if (pos + key.size() <= params.bytes) {
      std::memcpy(out.data.data() + pos, key.data(), key.size());
      ++out.key_counts[which % params.keys.size()];
    }
    ++which;
    // Jitter the interval a little so matches don't align with page
    // boundaries in a degenerate way.
    pos += params.plant_interval - 16 + rng.next_below(32);
  }
  return out;
}

std::uint64_t count_occurrences(const char* data, std::size_t len,
                                const std::string& key) {
  if (key.empty() || len < key.size()) return 0;
  std::uint64_t count = 0;
  const std::size_t limit = len - key.size();
  for (std::size_t i = 0; i <= limit; ++i) {
    if (data[i] == key[0] &&
        std::memcmp(data + i, key.data(), key.size()) == 0) {
      ++count;
    }
  }
  return count;
}

}  // namespace dex
