#include "common/virtual_clock.h"

#include "common/time_gate.h"

namespace dex {

namespace vclock {

namespace {
thread_local VirtualClock fallback_clock;
thread_local VirtualClock* current_clock = nullptr;

/// Batch threshold: consult the gate once at least this much virtual time
/// accumulated, so tiny charges don't each pay a mutex round trip.
constexpr VirtNs kGateBatchNs = 5000;
thread_local VirtNs gate_debt = 0;
}  // namespace

VirtualClock* current() {
  return current_clock != nullptr ? current_clock : &fallback_clock;
}

void set_current(VirtualClock* clock) { current_clock = clock; }

bool coupling_enabled() { return TimeGate::instance().enabled(); }

void gate_check(VirtNs delta) {
  gate_debt += delta;
  if (gate_debt < kGateBatchNs) return;
  gate_debt = 0;
  TimeGate::instance().throttle(current());
}

void gate_observe() {
  gate_debt = 0;
  TimeGate::instance().throttle(current());
}

}  // namespace vclock

ScopedPacing::ScopedPacing(double ratio) : enabled_(ratio > 0.0) {
  if (enabled_) TimeGate::instance().enable(/*window_ns=*/8000);
}

ScopedPacing::~ScopedPacing() {
  if (enabled_) TimeGate::instance().disable();
}

}  // namespace dex
