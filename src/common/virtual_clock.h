// Per-thread virtual time.
//
// DeX's performance results are reported in *virtual nanoseconds*: each
// thread owns a clock; compute charges modeled time, protocol operations
// charge the calibrated fabric cost model (net/cost_model.h), and
// synchronization events join clocks with `max`. This reproduces the shape
// of the paper's wall-clock measurements independent of the host machine:
// a thread's finishing time is the length of its longest dependency chain
// of compute + communication, exactly as on the real cluster.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "common/types.h"

namespace dex {

class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(VirtNs start) : ns_(start) {}

  VirtNs now() const { return ns_.load(std::memory_order_relaxed); }

  void advance(VirtNs delta) {
    ns_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Happens-before edge from an event that completed at virtual time `ts`
  /// (barrier release, futex wake, message receipt): local time becomes at
  /// least `ts`. Returns how far the clock moved (0 if `ts` is in the
  /// past).
  VirtNs observe(VirtNs ts) {
    VirtNs cur = ns_.load(std::memory_order_relaxed);
    while (cur < ts) {
      if (ns_.compare_exchange_weak(cur, ts, std::memory_order_relaxed)) {
        return ts - cur;
      }
    }
    return 0;
  }

  void reset(VirtNs t = 0) { ns_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<VirtNs> ns_{0};
};

/// Thread-local binding of the current DeX thread's clock. Threads outside
/// the DeX runtime (unit tests poking modules directly) get a private
/// fallback clock so charging never needs a null check.
namespace vclock {

VirtualClock* current();
void set_current(VirtualClock* clock);

/// Time coupling (see common/time_gate.h): while enabled, threads advance
/// their virtual clocks in bounded lockstep, so cross-thread interleavings
/// — and therefore contention phenomena like page ping-pong — occur in
/// virtual-time order rather than host-execution order. Disabled by
/// default; experiments enable it via ScopedPacing.
bool coupling_enabled();
void gate_check(VirtNs delta);   // internal: batch + throttle
void gate_observe();             // internal: unbatched throttle

inline VirtNs now() { return current()->now(); }
inline void advance(VirtNs delta) {
  current()->advance(delta);
  if (coupling_enabled()) gate_check(delta);
}
inline void observe(VirtNs ts) {
  // A forward jump can silently raise the gate's runnable minimum; it must
  // go through the gate (which notifies waiters whose turn has come and
  // throttles the jumper if it leapt ahead). Skipping this was a
  // lost-wakeup deadlock.
  if (current()->observe(ts) > 0 && coupling_enabled()) gate_observe();
}

}  // namespace vclock

/// RAII time-coupling scope (global; one experiment at a time). A ratio of
/// 0 leaves coupling off (correctness-only tests run at full speed); any
/// positive value enables the gate with the default lookahead window.
class ScopedPacing {
 public:
  explicit ScopedPacing(double ratio);
  ~ScopedPacing();
  ScopedPacing(const ScopedPacing&) = delete;
  ScopedPacing& operator=(const ScopedPacing&) = delete;

 private:
  bool enabled_;
};

/// RAII binder used by the runtime when entering a DeX thread body.
class ScopedClockBinding {
 public:
  explicit ScopedClockBinding(VirtualClock* clock)
      : previous_(vclock::current()) {
    vclock::set_current(clock);
  }
  ~ScopedClockBinding() { vclock::set_current(previous_); }
  ScopedClockBinding(const ScopedClockBinding&) = delete;
  ScopedClockBinding& operator=(const ScopedClockBinding&) = delete;

 private:
  VirtualClock* previous_;
};

}  // namespace dex
