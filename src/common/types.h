// Fundamental types shared by every DeX module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dex {

/// Identifies a (simulated) machine in the rack. The paper evaluates eight
/// nodes; we support arbitrary counts but default configs mirror the paper.
using NodeId = int;

/// Identifies a DeX thread within a process. Thread 0 is the main thread.
using TaskId = int;

/// A virtual address in the distributed (per-process) address space.
/// Global addresses are plain integers: the software MMU translates them to
/// node-local frames, exactly as hardware translates VAs through page tables.
using GAddr = std::uint64_t;

/// Virtual nanoseconds. All performance numbers DeX reports are measured on
/// per-thread virtual clocks charged by the calibrated cost model.
using VirtNs = std::uint64_t;

inline constexpr std::size_t kPageShift = 12;
inline constexpr std::size_t kPageSize = std::size_t{1} << kPageShift;  // 4 KB
inline constexpr GAddr kPageMask = ~GAddr{kPageSize - 1};

inline constexpr GAddr page_base(GAddr a) { return a & kPageMask; }
inline constexpr std::uint64_t page_index(GAddr a) { return a >> kPageShift; }
inline constexpr std::size_t page_offset(GAddr a) {
  return static_cast<std::size_t>(a & (kPageSize - 1));
}

/// Null / invalid global address. Address 0 is never mapped (like a real VM
/// layout keeping the zero page unmapped to catch null dereferences).
inline constexpr GAddr kNullGAddr = 0;

inline constexpr NodeId kInvalidNode = -1;

/// Access type of a memory operation / page fault.
enum class Access : std::uint8_t {
  kRead = 0,
  kWrite = 1,
};

inline const char* to_string(Access a) {
  return a == Access::kRead ? "read" : "write";
}

}  // namespace dex
