// A fixed-depth radix tree keyed by 64-bit integers, modeled on the Linux
// kernel radix tree the paper uses to index per-page ownership information
// by virtual page address (§III-B). Six bits per level over the page-index
// space; leaves hold T values allocated on first touch.
//
// Concurrency contract: `lookup` is safe concurrently with other lookups.
// `get_or_create`, `erase` and iteration require external synchronization
// (the directory shards accesses by page, see mem/directory.h).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "common/assert.h"

namespace dex {

template <typename T>
class RadixTree {
 public:
  static constexpr int kBitsPerLevel = 6;
  static constexpr int kFanout = 1 << kBitsPerLevel;  // 64
  // 9 levels * 6 bits = 54 bits of key space: covers any page index of a
  // 64-bit address space (64 - 12 = 52 bits needed).
  static constexpr int kLevels = 9;

  RadixTree() = default;
  RadixTree(const RadixTree&) = delete;
  RadixTree& operator=(const RadixTree&) = delete;
  RadixTree(RadixTree&&) = default;
  RadixTree& operator=(RadixTree&&) = default;

  /// Returns the value for `key`, or nullptr when absent.
  T* lookup(std::uint64_t key) const {
    const Node* node = root_.get();
    for (int level = kLevels - 1; level > 0 && node != nullptr; --level) {
      node = node->children[slot(key, level)].get();
    }
    if (node == nullptr) return nullptr;
    auto& leaf = node->values[slot(key, 0)];
    return leaf ? leaf.get() : nullptr;
  }

  /// Returns the value for `key`, default-constructing it (and any interior
  /// nodes) on first access.
  template <typename... Args>
  T& get_or_create(std::uint64_t key, Args&&... args) {
    if (!root_) root_ = std::make_unique<Node>();
    Node* node = root_.get();
    for (int level = kLevels - 1; level > 0; --level) {
      auto& child = node->children[slot(key, level)];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    auto& leaf = node->values[slot(key, 0)];
    if (!leaf) {
      leaf = std::make_unique<T>(std::forward<Args>(args)...);
      ++size_;
    }
    return *leaf;
  }

  /// Removes `key` if present. Interior nodes are kept (freed on destroy);
  /// the kernel tree behaves likewise unless explicitly shrunk.
  bool erase(std::uint64_t key) {
    Node* node = root_.get();
    for (int level = kLevels - 1; level > 0 && node != nullptr; --level) {
      node = node->children[slot(key, level)].get();
    }
    if (node == nullptr) return false;
    auto& leaf = node->values[slot(key, 0)];
    if (!leaf) return false;
    leaf.reset();
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// In-order traversal; `fn(key, value)`.
  void for_each(const std::function<void(std::uint64_t, T&)>& fn) const {
    if (root_) walk(root_.get(), kLevels - 1, 0, fn);
  }

  void clear() {
    root_.reset();
    size_ = 0;
  }

 private:
  struct Node {
    // Interior levels use `children`; the leaf level uses `values`.
    std::array<std::unique_ptr<Node>, kFanout> children{};
    std::array<std::unique_ptr<T>, kFanout> values{};
  };

  static int slot(std::uint64_t key, int level) {
    return static_cast<int>((key >> (level * kBitsPerLevel)) & (kFanout - 1));
  }

  void walk(const Node* node, int level, std::uint64_t prefix,
            const std::function<void(std::uint64_t, T&)>& fn) const {
    if (level == 0) {
      for (int i = 0; i < kFanout; ++i) {
        if (node->values[i]) {
          fn(prefix << kBitsPerLevel | static_cast<unsigned>(i),
             *node->values[i]);
        }
      }
      return;
    }
    for (int i = 0; i < kFanout; ++i) {
      if (node->children[i]) {
        walk(node->children[i].get(), level - 1,
             prefix << kBitsPerLevel | static_cast<unsigned>(i), fn);
      }
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace dex
