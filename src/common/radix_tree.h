// A fixed-depth radix tree keyed by 64-bit integers, modeled on the Linux
// kernel radix tree the paper uses to index per-page ownership information
// by virtual page address (§III-B). Six bits per level over the page-index
// space; leaves hold T values allocated on first touch.
//
// Concurrency contract: all pointers are atomics published with release
// stores, so `lookup` is safe concurrently with `get_or_create` — this is
// what lets the directory's optimistic (version-validated) probes traverse
// the tree without holding the shard latch. A non-null leaf reached by a
// racing lookup is always the fully constructed value for that key: values
// are published only after construction and never freed before the tree
// quiesces. `get_or_create`, `erase` and iteration still require external
// write synchronization (the directory shards accesses by page, see
// mem/directory.h), and `erase` additionally requires no concurrent
// traffic on the key (the erased value is freed immediately).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/assert.h"

namespace dex {

template <typename T>
class RadixTree {
 public:
  static constexpr int kBitsPerLevel = 6;
  static constexpr int kFanout = 1 << kBitsPerLevel;  // 64
  // 9 levels * 6 bits = 54 bits of key space: covers any page index of a
  // 64-bit address space (64 - 12 = 52 bits needed).
  static constexpr int kLevels = 9;

  RadixTree() = default;
  RadixTree(const RadixTree&) = delete;
  RadixTree& operator=(const RadixTree&) = delete;
  RadixTree(RadixTree&&) = delete;
  RadixTree& operator=(RadixTree&&) = delete;
  ~RadixTree() { destroy(root_.load(std::memory_order_relaxed)); }

  /// Returns the value for `key`, or nullptr when absent.
  T* lookup(std::uint64_t key) const {
    const Node* node = root_.load(std::memory_order_acquire);
    for (int level = kLevels - 1; level > 0 && node != nullptr; --level) {
      node = node->children[slot(key, level)].load(std::memory_order_acquire);
    }
    if (node == nullptr) return nullptr;
    return node->values[slot(key, 0)].load(std::memory_order_acquire);
  }

  /// Returns the value for `key`, default-constructing it (and any interior
  /// nodes) on first access.
  template <typename... Args>
  T& get_or_create(std::uint64_t key, Args&&... args) {
    Node* node = root_.load(std::memory_order_relaxed);
    if (node == nullptr) {
      node = new Node();
      root_.store(node, std::memory_order_release);
    }
    for (int level = kLevels - 1; level > 0; --level) {
      auto& child_slot = node->children[slot(key, level)];
      Node* child = child_slot.load(std::memory_order_relaxed);
      if (child == nullptr) {
        child = new Node();
        child_slot.store(child, std::memory_order_release);
      }
      node = child;
    }
    auto& leaf = node->values[slot(key, 0)];
    T* value = leaf.load(std::memory_order_relaxed);
    if (value == nullptr) {
      value = new T(std::forward<Args>(args)...);
      leaf.store(value, std::memory_order_release);
      ++size_;
    }
    return *value;
  }

  /// Removes `key` if present. Interior nodes are kept (freed on destroy);
  /// the kernel tree behaves likewise unless explicitly shrunk.
  bool erase(std::uint64_t key) {
    Node* node = root_.load(std::memory_order_relaxed);
    for (int level = kLevels - 1; level > 0 && node != nullptr; --level) {
      node = node->children[slot(key, level)].load(std::memory_order_relaxed);
    }
    if (node == nullptr) return false;
    auto& leaf = node->values[slot(key, 0)];
    T* value = leaf.load(std::memory_order_relaxed);
    if (value == nullptr) return false;
    leaf.store(nullptr, std::memory_order_release);
    delete value;
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// In-order traversal; `fn(key, value)`.
  void for_each(const std::function<void(std::uint64_t, T&)>& fn) const {
    const Node* root = root_.load(std::memory_order_acquire);
    if (root != nullptr) walk(root, kLevels - 1, 0, fn);
  }

  void clear() {
    Node* root = root_.exchange(nullptr, std::memory_order_relaxed);
    destroy(root);
    size_ = 0;
  }

 private:
  struct Node {
    // Interior levels use `children`; the leaf level uses `values`.
    // Atomic raw pointers (not unique_ptr) so concurrent lookups read a
    // published-or-null pointer, never a half-written one.
    std::array<std::atomic<Node*>, kFanout> children{};
    std::array<std::atomic<T*>, kFanout> values{};
  };

  static int slot(std::uint64_t key, int level) {
    return static_cast<int>((key >> (level * kBitsPerLevel)) & (kFanout - 1));
  }

  void walk(const Node* node, int level, std::uint64_t prefix,
            const std::function<void(std::uint64_t, T&)>& fn) const {
    if (level == 0) {
      for (int i = 0; i < kFanout; ++i) {
        T* value = node->values[i].load(std::memory_order_acquire);
        if (value != nullptr) {
          fn(prefix << kBitsPerLevel | static_cast<unsigned>(i), *value);
        }
      }
      return;
    }
    for (int i = 0; i < kFanout; ++i) {
      const Node* child = node->children[i].load(std::memory_order_acquire);
      if (child != nullptr) {
        walk(child, level - 1,
             prefix << kBitsPerLevel | static_cast<unsigned>(i), fn);
      }
    }
  }

  static void destroy(Node* node) {
    if (node == nullptr) return;
    for (int i = 0; i < kFanout; ++i) {
      destroy(node->children[i].load(std::memory_order_relaxed));
      delete node->values[i].load(std::memory_order_relaxed);
    }
    delete node;
  }

  std::atomic<Node*> root_{nullptr};
  std::size_t size_ = 0;
};

}  // namespace dex
