// Conservative virtual-time coupling of threads (a windowed PDES gate).
//
// Why: the simulation runs real OS threads but reports virtual time. On a
// host with few cores (or a fast host), real execution order diverges
// wildly from virtual order, and contention phenomena the paper measures —
// page ping-pong, §V-D retry storms — never materialize. The TimeGate
// restores fidelity: while enabled, a thread whose virtual clock is more
// than `window` ahead of the slowest *runnable* coupled thread blocks until
// the others catch up, so cross-thread interleavings happen in virtual-time
// order regardless of host parallelism.
//
// Threads that block in the simulation (futex wait, barrier dock, join,
// pool exhaustion, fault followers) must be excluded while blocked — their
// clocks stand still and would wedge the gate; they mark themselves with
// ScopedGateBlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <array>
#include <string>
#include <unordered_map>

#include "common/types.h"
#include "common/virtual_clock.h"

namespace dex {

class TimeGate {
 public:
  static TimeGate& instance();

  /// Enables coupling with the given lookahead window. Clears membership.
  void enable(VirtNs window_ns);
  void disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Called by a coupled thread after advancing its clock; blocks while the
  /// clock is more than the window ahead of the slowest runnable member.
  /// Registers the clock on first use.
  void throttle(VirtualClock* clock);

  /// Eagerly registers a clock (no blocking). Parents call this for a
  /// child *before* starting it, so an early-scheduled sibling can never
  /// burst ahead of threads that have not run yet.
  void add(VirtualClock* clock);

  /// Excludes/includes a clock while its thread blocks in the simulation.
  void block(VirtualClock* clock, const char* site = "?");
  void unblock(VirtualClock* clock);

  /// Permanently removes a clock (thread exit).
  void leave(VirtualClock* clock);

  /// Human-readable snapshot of gate state (debugging stalled runs).
  std::string debug_dump() const;

 private:
  struct Member {
    int blocked = 0;  // nesting depth of ScopedGateBlock
    const char* block_site = nullptr;
  };

  /// Minimum clock over runnable members; UINT64_MAX when none.
  VirtNs min_runnable_locked() const;

  struct Event {
    char kind;          // T=throttle-enter, W=wake-pass, B=block, U=unblock,
                        // L=leave, N=notify
    const VirtualClock* clock;
    VirtNs clock_now;
    VirtNs min;
  };
  void log_locked(char kind, const VirtualClock* clock, VirtNs min) {
    events_[event_pos_++ % events_.size()] = Event{kind, clock,
                                                   clock ? clock->now() : 0,
                                                   min};
  }
  std::array<Event, 64> events_{};
  std::size_t event_pos_ = 0;

  std::atomic<bool> enabled_{false};
  VirtNs window_ = 50000;
  VirtNs last_min_ = 0;
  int waiting_ = 0;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<VirtualClock*, Member> members_;
};

/// RAII: marks the calling thread's clock blocked for the gate while the
/// thread waits on a host synchronization primitive.
class ScopedGateBlock {
 public:
  explicit ScopedGateBlock(const char* site = "?")
      : clock_(vclock::current()) {
    TimeGate::instance().block(clock_, site);
  }
  ~ScopedGateBlock() { TimeGate::instance().unblock(clock_); }
  ScopedGateBlock(const ScopedGateBlock&) = delete;
  ScopedGateBlock& operator=(const ScopedGateBlock&) = delete;

 private:
  VirtualClock* clock_;
};

}  // namespace dex
