// Deterministic PRNGs used by workload generators and benchmarks.
// SplitMix64 for seeding, xoshiro256** for streams, plus the NPB linear
// congruential generator required by the EP kernel so its statistics match
// the benchmark specification.
#pragma once

#include <cstdint>

namespace dex {

/// SplitMix64: good avalanche, one 64-bit state word. Used for seeding.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast general-purpose generator for workload synthesis.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias for small bounds.
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// The NAS Parallel Benchmarks `randlc` generator: x_{k+1} = a*x_k mod 2^46.
/// EP's acceptance statistics (counts per annulus) depend on this exact
/// recurrence, so we implement it bit-faithfully.
class NpbRand {
 public:
  static constexpr double kA = 1220703125.0;  // 5^13

  explicit NpbRand(double seed = 271828183.0) : x_(seed) {}

  /// Returns a uniform double in (0, 1) and advances the state.
  double next() {
    // Break a and x into two 23-bit halves and carry out the 46-bit
    // multiply exactly in doubles, as the NPB reference does.
    constexpr double r23 = 0x1.0p-23, t23 = 0x1.0p23;
    constexpr double r46 = 0x1.0p-46, t46 = 0x1.0p46;
    const double a1 = static_cast<double>(static_cast<long long>(r23 * kA));
    const double a2 = kA - t23 * a1;
    const double x1 = static_cast<double>(static_cast<long long>(r23 * x_));
    const double x2 = x_ - t23 * x1;
    double t1 = a1 * x2 + a2 * x1;
    const double t2 = static_cast<double>(static_cast<long long>(r23 * t1));
    const double z = t1 - t23 * t2;
    t1 = t23 * z + a2 * x2;
    const double t3 = static_cast<double>(static_cast<long long>(r46 * t1));
    x_ = t1 - t46 * t3;
    return r46 * x_;
  }

  /// Advances the seed by `n` steps in O(log n) (NPB's ipow46 idiom),
  /// letting each EP worker jump directly to its batch offset.
  void skip(std::uint64_t n) {
    double a = kA;
    while (n != 0) {
      if (n & 1) x_ = mul46(a, x_);
      a = mul46(a, a);
      n >>= 1;
    }
  }

  double state() const { return x_; }

 private:
  static double mul46(double a, double b) {
    constexpr double r23 = 0x1.0p-23, t23 = 0x1.0p23;
    constexpr double r46 = 0x1.0p-46, t46 = 0x1.0p46;
    const double a1 = static_cast<double>(static_cast<long long>(r23 * a));
    const double a2 = a - t23 * a1;
    const double b1 = static_cast<double>(static_cast<long long>(r23 * b));
    const double b2 = b - t23 * b1;
    double t1 = a1 * b2 + a2 * b1;
    const double t2 = static_cast<double>(static_cast<long long>(r23 * t1));
    const double z = t1 - t23 * t2;
    t1 = t23 * z + a2 * b2;
    const double t3 = static_cast<double>(static_cast<long long>(r46 * t1));
    return t1 - t46 * t3;
  }

  double x_;
};

}  // namespace dex
